//! The simulated datacenter behind the billing stage: hosts, placement,
//! SLA scoring and energy metering.
//!
//! The paper prices an allocation arithmetically — hourly rate × instance
//! count (§IV-C) — which silently assumes every instance lands on infinite,
//! uncontended capacity. This module supplies the missing substrate: a small
//! fleet of [`Host`]s with finite vCPU/memory capacity, a deterministic
//! [`PlacementPolicy`] that maps each allocated instance onto a host
//! ([`FirstFit`], [`BestFit`], [`WorstFit`]), an [`SlaModel`] that scores a
//! slot's *actual* arrivals against the capacity the tenant's forecast
//! provisioned (the processor-sharing server of [`crate::server`] supplies
//! the latency and drop signal, §V-B / Fig. 8), and a linear-interpolation
//! [`PowerModel`] metered per host per slot.
//!
//! Everything here is a pure function of its inputs — no clocks, no RNG, no
//! shared state — so a [`Datacenter`] embedded in a per-tenant billing
//! backend is bit-reproducible across runs, thread counts and live tenant
//! migrations. That determinism contract is what lets the fleet layer fold
//! SLA-violation and energy rollups in tenant-id order and assert bitwise
//! equality in its determinism suite (see `docs/datacenter.md`).

use crate::instance::{InstanceSpec, InstanceType};
use crate::server::Server;
use mca_offload::AccelerationGroupId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One physical host of the simulated datacenter: fixed vCPU and memory
/// capacity, with resource accounting over the instances placed on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// The host's index in its datacenter.
    id: usize,
    /// vCPU capacity.
    vcpus: u32,
    /// Memory capacity, GiB.
    memory_gib: f64,
    /// vCPUs consumed by placed instances.
    used_vcpus: u32,
    /// Memory consumed by placed instances, GiB.
    used_memory_gib: f64,
}

impl Host {
    /// Creates an empty host with the given capacity.
    pub fn new(id: usize, vcpus: u32, memory_gib: f64) -> Self {
        Self {
            id,
            vcpus,
            memory_gib,
            used_vcpus: 0,
            used_memory_gib: 0.0,
        }
    }

    /// The host's index in its datacenter.
    pub fn id(&self) -> usize {
        self.id
    }

    /// vCPU capacity.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// vCPUs consumed by placed instances.
    pub fn used_vcpus(&self) -> u32 {
        self.used_vcpus
    }

    /// vCPUs still free.
    pub fn free_vcpus(&self) -> u32 {
        self.vcpus.saturating_sub(self.used_vcpus)
    }

    /// Memory still free, GiB.
    pub fn free_memory_gib(&self) -> f64 {
        (self.memory_gib - self.used_memory_gib).max(0.0)
    }

    /// Whether an instance of `spec` fits in the remaining capacity.
    pub fn fits(&self, spec: &InstanceSpec) -> bool {
        self.free_vcpus() >= spec.vcpus && self.free_memory_gib() >= spec.memory_gib
    }

    /// CPU utilization in `[0, 1]`: placed vCPUs over capacity.
    pub fn utilization(&self) -> f64 {
        if self.vcpus == 0 {
            0.0
        } else {
            f64::from(self.used_vcpus) / f64::from(self.vcpus)
        }
    }

    /// Whether any instance is placed here (an idle host is powered off and
    /// draws nothing — see [`Datacenter::energy_wh`]).
    pub fn is_active(&self) -> bool {
        self.used_vcpus > 0
    }

    /// Accounts an instance of `spec` onto the host. Callers check
    /// [`Host::fits`] first; placement beyond capacity is a caller bug.
    fn place(&mut self, spec: &InstanceSpec) {
        debug_assert!(self.fits(spec), "placement beyond host capacity");
        self.used_vcpus += spec.vcpus;
        self.used_memory_gib += spec.memory_gib;
    }
}

/// A deterministic host-selection policy: given the current hosts and the
/// resource demand of one instance, pick the host to place it on.
///
/// Implementations must be pure functions of their arguments (no RNG, no
/// interior state), so that a placement sequence is reproducible across
/// runs, thread counts and tenant migrations. Ties break on the lowest host
/// index, which the provided policies guarantee by scanning in index order
/// and replacing the incumbent only on a strict improvement.
pub trait PlacementPolicy {
    /// The index of the host to place an instance of `spec` on, or `None`
    /// when no host has the capacity.
    fn choose(&self, hosts: &[Host], spec: &InstanceSpec) -> Option<usize>;
}

/// Places each instance on the lowest-indexed host with enough capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn choose(&self, hosts: &[Host], spec: &InstanceSpec) -> Option<usize> {
        hosts.iter().position(|h| h.fits(spec))
    }
}

/// Places each instance on the fitting host with the *least* free capacity
/// (tightest fit): consolidates instances onto few hosts, which minimizes
/// energy at the price of co-location contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn choose(&self, hosts: &[Host], spec: &InstanceSpec) -> Option<usize> {
        let mut best: Option<(u32, f64, usize)> = None;
        for (index, host) in hosts.iter().enumerate() {
            if !host.fits(spec) {
                continue;
            }
            let key = (host.free_vcpus(), host.free_memory_gib());
            match best {
                Some((vcpus, memory, _)) if (key.0, key.1) >= (vcpus, memory) => {}
                _ => best = Some((key.0, key.1, index)),
            }
        }
        best.map(|(_, _, index)| index)
    }
}

/// Places each instance on the fitting host with the *most* free capacity:
/// spreads instances across hosts, which minimizes co-location contention at
/// the price of keeping more hosts powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorstFit;

impl PlacementPolicy for WorstFit {
    fn choose(&self, hosts: &[Host], spec: &InstanceSpec) -> Option<usize> {
        let mut best: Option<(u32, f64, usize)> = None;
        for (index, host) in hosts.iter().enumerate() {
            if !host.fits(spec) {
                continue;
            }
            let key = (host.free_vcpus(), host.free_memory_gib());
            match best {
                Some((vcpus, memory, _)) if (key.0, key.1) <= (vcpus, memory) => {}
                _ => best = Some((key.0, key.1, index)),
            }
        }
        best.map(|(_, _, index)| index)
    }
}

/// The serializable selector over the built-in placement policies — what a
/// `SystemConfig` carries (the [`PlacementPolicy`] trait itself is object
/// behaviour; this enum is its configuration-file form, the same split
/// `AllocationPolicy` uses in `mca-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementKind {
    /// [`FirstFit`].
    #[default]
    FirstFit,
    /// [`BestFit`].
    BestFit,
    /// [`WorstFit`].
    WorstFit,
}

impl PlacementKind {
    /// Every built-in policy, in sweep order.
    pub const ALL: [PlacementKind; 3] = [
        PlacementKind::FirstFit,
        PlacementKind::BestFit,
        PlacementKind::WorstFit,
    ];

    /// A short lowercase label (`first-fit`, `best-fit`, `worst-fit`).
    pub fn label(self) -> &'static str {
        match self {
            PlacementKind::FirstFit => "first-fit",
            PlacementKind::BestFit => "best-fit",
            PlacementKind::WorstFit => "worst-fit",
        }
    }
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl PlacementPolicy for PlacementKind {
    fn choose(&self, hosts: &[Host], spec: &InstanceSpec) -> Option<usize> {
        match self {
            PlacementKind::FirstFit => FirstFit.choose(hosts, spec),
            PlacementKind::BestFit => BestFit.choose(hosts, spec),
            PlacementKind::WorstFit => WorstFit.choose(hosts, spec),
        }
    }
}

/// A placement that could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// No host had capacity for an instance of this type. The datacenter is
    /// left exactly as it was before the failed transaction.
    NoHostFits {
        /// The instance type that could not be placed.
        instance_type: InstanceType,
        /// How many hosts the datacenter has.
        hosts: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoHostFits {
                instance_type,
                hosts,
            } => write!(
                f,
                "no host fits an instance of {} across {hosts} host(s)",
                instance_type.api_name()
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Linear-interpolation host power model: a powered host draws
/// `idle_watts` at zero utilization and `peak_watts` fully loaded, linear in
/// between — the standard SPECpower-style first-order model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Draw of a powered but idle host, watts.
    pub idle_watts: f64,
    /// Draw of a fully utilized host, watts.
    pub peak_watts: f64,
}

impl PowerModel {
    /// A model interpolating between the given idle and peak draws.
    pub fn linear(idle_watts: f64, peak_watts: f64) -> Self {
        Self {
            idle_watts,
            peak_watts,
        }
    }

    /// A typical dual-socket 2017 server: 160 W idle, 400 W at full load.
    pub fn paper_default() -> Self {
        Self::linear(160.0, 400.0)
    }

    /// Instantaneous draw at `utilization` (clamped to `[0, 1]`), watts.
    pub fn power_watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }
}

/// The actual demand one acceleration group saw in a slot, against the
/// capacity the tenant's forecast provisioned for it — the input row of
/// [`SlaModel`] scoring (built by the billing backend from the allocation's
/// `capacity_per_group` and the slot's observed arrivals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDemand {
    /// The acceleration group.
    pub group: AccelerationGroupId,
    /// Users the slot actually brought to the group.
    pub demand: usize,
    /// Concurrent users the standing allocation provisioned for the group.
    pub capacity: usize,
}

/// SLA scoring over one slot: violations when the forecast under-provisioned
/// against the actual arrivals, plus the latency/drop signal of the
/// processor-sharing server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaModel {
    /// The response-time target a group counts as violated beyond, ms (the
    /// same target the acceleration groups' capacities were derived under).
    pub target_response_ms: f64,
    /// Typical task work used for the latency signal, work units (matches
    /// the allocator's capacity derivation).
    pub work_units: f64,
    /// Latency inflation per unit of co-located host utilization: an
    /// instance on a host whose *other* tenants' instances use fraction `f`
    /// of the vCPUs sees its response scaled by `1 + penalty × f`. This is
    /// the shared-EC2-host contention the paper measures in Fig. 6 —
    /// consolidation (best-fit) trades latency for energy through exactly
    /// this term.
    pub co_location_penalty: f64,
}

impl SlaModel {
    /// The paper-aligned defaults: 500 ms target, 65-unit typical task,
    /// 25 % worst-case co-location inflation.
    pub fn paper_default() -> Self {
        Self {
            target_response_ms: 500.0,
            work_units: 65.0,
            co_location_penalty: 0.25,
        }
    }
}

/// The outcome of scoring one slot against the standing placement.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlaAssessment {
    /// Group-slots violated: demand exceeded the provisioned capacity, or
    /// the modeled worst response exceeded the target.
    pub violations: usize,
    /// Users beyond the admission limit of their instance
    /// ([`crate::server::ServerConfig::max_outstanding`]) — the drop signal.
    pub dropped_users: usize,
    /// Sum over groups of the worst modeled per-instance response, ms.
    pub latency_ms: f64,
}

/// Configuration of a simulated datacenter: host fleet shape, placement
/// policy, power and SLA models. Carried by `SystemConfig::with_datacenter`
/// the same way the index and parallelism policies are.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// vCPU capacity per host.
    pub host_vcpus: u32,
    /// Memory capacity per host, GiB.
    pub host_memory_gib: f64,
    /// The placement policy.
    pub placement: PlacementKind,
    /// The per-host power model.
    pub power: PowerModel,
    /// The SLA scoring model.
    pub sla: SlaModel,
}

impl DatacenterConfig {
    /// The default fleet: eight dual-socket 48-vCPU/192-GiB hosts — enough
    /// to place any cap-respecting allocation of the EC2 catalogue, small
    /// enough that placement policy visibly changes consolidation.
    pub fn paper_default() -> Self {
        Self {
            hosts: 8,
            host_vcpus: 48,
            host_memory_gib: 192.0,
            placement: PlacementKind::default(),
            power: PowerModel::paper_default(),
            sla: SlaModel::paper_default(),
        }
    }

    /// Replaces the placement policy.
    pub fn with_placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// Replaces the host fleet shape.
    pub fn with_hosts(mut self, hosts: usize, host_vcpus: u32, host_memory_gib: f64) -> Self {
        self.hosts = hosts;
        self.host_vcpus = host_vcpus;
        self.host_memory_gib = host_memory_gib;
        self
    }

    /// Replaces the power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Replaces the SLA model.
    pub fn with_sla(mut self, sla: SlaModel) -> Self {
        self.sla = sla;
        self
    }
}

/// One instance placed on a host, in placement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedInstance {
    /// The acceleration group the instance serves.
    pub group: AccelerationGroupId,
    /// The instance type.
    pub instance_type: InstanceType,
    /// The host the instance landed on.
    pub host: usize,
}

/// A simulated datacenter: the host fleet, the standing placement and the
/// models that score it. One `Datacenter` serves one tenant (it lives inside
/// the tenant's billing backend and migrates with the tenant), which is what
/// makes its accounting thread-count-invariant by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datacenter {
    hosts: Vec<Host>,
    placement: PlacementKind,
    power: PowerModel,
    sla: SlaModel,
    /// The standing placement, one entry per placed instance.
    placements: Vec<PlacedInstance>,
}

impl Datacenter {
    /// Builds an empty datacenter from its configuration.
    pub fn new(config: &DatacenterConfig) -> Self {
        Self {
            hosts: (0..config.hosts)
                .map(|id| Host::new(id, config.host_vcpus, config.host_memory_gib))
                .collect(),
            placement: config.placement,
            power: config.power,
            sla: config.sla,
            placements: Vec::new(),
        }
    }

    /// The host fleet.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// The standing placement, in placement order.
    pub fn placements(&self) -> &[PlacedInstance] {
        &self.placements
    }

    /// The active placement policy.
    pub fn placement_kind(&self) -> PlacementKind {
        self.placement
    }

    /// Number of hosts with at least one instance placed.
    pub fn active_hosts(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_active()).count()
    }

    /// Replaces the standing placement with `per_group` — the allocation's
    /// per-group instance counts, placed instance by instance (groups in
    /// order, types in catalogue order within each group) onto freshly
    /// emptied hosts under the policy. The transaction is atomic: on
    /// [`PlacementError`] the previous placement (hosts and instances) is
    /// left exactly as it was. Returns the number of instances placed.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoHostFits`] when some instance fits on no host.
    pub fn place_allocation(
        &mut self,
        per_group: &[(AccelerationGroupId, Vec<(InstanceType, usize)>)],
    ) -> Result<usize, PlacementError> {
        let mut hosts: Vec<Host> = self
            .hosts
            .iter()
            .map(|h| Host::new(h.id, h.vcpus, h.memory_gib))
            .collect();
        let mut placements = Vec::new();
        for (group, counts) in per_group {
            for &(instance_type, count) in counts {
                let spec = instance_type.spec();
                for _ in 0..count {
                    let host =
                        self.placement
                            .choose(&hosts, &spec)
                            .ok_or(PlacementError::NoHostFits {
                                instance_type,
                                hosts: hosts.len(),
                            })?;
                    hosts[host].place(&spec);
                    placements.push(PlacedInstance {
                        group: *group,
                        instance_type,
                        host,
                    });
                }
            }
        }
        let placed = placements.len();
        self.hosts = hosts;
        self.placements = placements;
        Ok(placed)
    }

    /// Releases every placed instance (tenant decommission or a placement
    /// failure): all hosts return to empty and power off.
    pub fn clear(&mut self) {
        for host in &mut self.hosts {
            host.used_vcpus = 0;
            host.used_memory_gib = 0.0;
        }
        self.placements.clear();
    }

    /// Energy drawn by the standing placement over `slot_hours`, watt-hours:
    /// each *active* host contributes its interpolated draw at its current
    /// utilization (idle hosts are powered off and contribute nothing —
    /// which is exactly why consolidating placements meter less energy than
    /// spreading ones at identical instance counts and cost).
    pub fn energy_wh(&self, slot_hours: f64) -> f64 {
        self.hosts
            .iter()
            .filter(|h| h.is_active())
            .map(|h| self.power.power_watts(h.utilization()) * slot_hours)
            .sum()
    }

    /// Scores one slot's actual per-group demand against the standing
    /// placement, per [`SlaModel`]: a group is violated when its demand
    /// exceeds the capacity its forecast provisioned or when the modeled
    /// worst response (processor-sharing contention, inflated by co-located
    /// host load) exceeds the target; users beyond an instance's admission
    /// limit count as dropped. Pure arithmetic over exact catalogue
    /// constants — bit-reproducible anywhere.
    pub fn assess(&self, demands: &[GroupDemand]) -> SlaAssessment {
        let mut out = SlaAssessment::default();
        for demand in demands {
            if demand.demand == 0 {
                continue;
            }
            let members: Vec<&PlacedInstance> = self
                .placements
                .iter()
                .filter(|p| p.group == demand.group)
                .collect();
            if members.is_empty() {
                // nothing serves the group: every user is both violated and
                // dropped
                out.violations += 1;
                out.dropped_users += demand.demand;
                continue;
            }
            let weights: Vec<f64> = members
                .iter()
                .map(|p| p.instance_type.spec().aggregate_throughput())
                .collect();
            let total_weight: f64 = weights.iter().sum();
            let mut worst_response = 0.0f64;
            for (placed, weight) in members.iter().zip(&weights) {
                // each instance serves its throughput-proportional share of
                // the demand, rounded up (users are indivisible)
                let share = (demand.demand as f64 * weight / total_weight).ceil() as usize;
                let server = Server::new(placed.instance_type);
                let host = &self.hosts[placed.host];
                let foreign = host
                    .used_vcpus
                    .saturating_sub(placed.instance_type.spec().vcpus);
                let co_location = 1.0
                    + self.sla.co_location_penalty * f64::from(foreign)
                        / f64::from(host.vcpus.max(1));
                let response =
                    server.expected_execution_ms(self.sla.work_units, share) * co_location;
                worst_response = worst_response.max(response);
                let limit = server.config().max_outstanding;
                out.dropped_users += share.saturating_sub(limit);
            }
            if demand.demand > demand.capacity || worst_response > self.sla.target_response_ms {
                out.violations += 1;
            }
            out.latency_ms += worst_response;
        }
        out
    }
}

impl Snapshot for PlacementError {
    fn encode(&self, out: &mut Vec<u8>) {
        let PlacementError::NoHostFits {
            instance_type,
            hosts,
        } = self;
        instance_type.encode(out);
        hosts.encode(out);
    }
}

impl Restore for PlacementError {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(PlacementError::NoHostFits {
            instance_type: InstanceType::decode(cur)?,
            hosts: usize::decode(cur)?,
        })
    }
}

impl Snapshot for Host {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.vcpus.encode(out);
        self.memory_gib.encode(out);
        self.used_vcpus.encode(out);
        self.used_memory_gib.encode(out);
    }
}

impl Restore for Host {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            id: usize::decode(cur)?,
            vcpus: u32::decode(cur)?,
            memory_gib: f64::decode(cur)?,
            used_vcpus: u32::decode(cur)?,
            used_memory_gib: f64::decode(cur)?,
        })
    }
}

impl Snapshot for PlacementKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            PlacementKind::FirstFit => 0,
            PlacementKind::BestFit => 1,
            PlacementKind::WorstFit => 2,
        };
        tag.encode(out);
    }
}

impl Restore for PlacementKind {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(PlacementKind::FirstFit),
            1 => Ok(PlacementKind::BestFit),
            2 => Ok(PlacementKind::WorstFit),
            _ => Err(SnapshotError::Malformed {
                context: "placement kind tag",
            }),
        }
    }
}

impl Snapshot for PowerModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.idle_watts.encode(out);
        self.peak_watts.encode(out);
    }
}

impl Restore for PowerModel {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            idle_watts: f64::decode(cur)?,
            peak_watts: f64::decode(cur)?,
        })
    }
}

impl Snapshot for SlaModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.target_response_ms.encode(out);
        self.work_units.encode(out);
        self.co_location_penalty.encode(out);
    }
}

impl Restore for SlaModel {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            target_response_ms: f64::decode(cur)?,
            work_units: f64::decode(cur)?,
            co_location_penalty: f64::decode(cur)?,
        })
    }
}

impl Snapshot for PlacedInstance {
    fn encode(&self, out: &mut Vec<u8>) {
        self.group.encode(out);
        self.instance_type.encode(out);
        self.host.encode(out);
    }
}

impl Restore for PlacedInstance {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            group: AccelerationGroupId::decode(cur)?,
            instance_type: InstanceType::decode(cur)?,
            host: usize::decode(cur)?,
        })
    }
}

/// The datacenter checkpoints its full occupancy state — hosts with their
/// live vCPU/memory accounting and the standing placement — so a restored
/// billing backend meters energy and scores SLAs exactly as the
/// uninterrupted run would.
impl Snapshot for Datacenter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hosts.encode(out);
        self.placement.encode(out);
        self.power.encode(out);
        self.sla.encode(out);
        self.placements.encode(out);
    }
}

impl Restore for Datacenter {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let hosts = Vec::<Host>::decode(cur)?;
        let placement = PlacementKind::decode(cur)?;
        let power = PowerModel::decode(cur)?;
        let sla = SlaModel::decode(cur)?;
        let placements = Vec::<PlacedInstance>::decode(cur)?;
        if placements.iter().any(|p| p.host >= hosts.len()) {
            return Err(SnapshotError::Malformed {
                context: "placed instance on a host that does not exist",
            });
        }
        Ok(Self {
            hosts,
            placement,
            power,
            sla,
            placements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(id: u8) -> AccelerationGroupId {
        AccelerationGroupId(id)
    }

    fn nano_pair() -> Vec<(AccelerationGroupId, Vec<(InstanceType, usize)>)> {
        vec![(group(1), vec![(InstanceType::T2Nano, 2)])]
    }

    #[test]
    fn first_fit_packs_in_index_order() {
        let dc = Datacenter::new(&DatacenterConfig::paper_default());
        let spec = InstanceType::T2Nano.spec();
        assert_eq!(FirstFit.choose(dc.hosts(), &spec), Some(0));
    }

    #[test]
    fn best_fit_prefers_the_tightest_host_and_worst_fit_the_emptiest() {
        let mut hosts = vec![Host::new(0, 48, 192.0), Host::new(1, 48, 192.0)];
        hosts[0].place(&InstanceType::M4_4XLarge.spec()); // 16 vcpus used
        let spec = InstanceType::T2Nano.spec();
        assert_eq!(BestFit.choose(&hosts, &spec), Some(0), "tightest fits win");
        assert_eq!(WorstFit.choose(&hosts, &spec), Some(1), "emptiest wins");
        // a host too small for the demand is skipped by every policy
        let big = InstanceType::M4_10XLarge.spec();
        hosts[1].place(&InstanceType::M4_10XLarge.spec()); // 40 of 48 used
        assert_eq!(FirstFit.choose(&hosts, &big), None);
        assert_eq!(BestFit.choose(&hosts, &big), None);
        assert_eq!(WorstFit.choose(&hosts, &big), None);
    }

    #[test]
    fn ties_break_on_the_lowest_host_index() {
        let hosts = vec![Host::new(0, 48, 192.0), Host::new(1, 48, 192.0)];
        let spec = InstanceType::T2Small.spec();
        assert_eq!(BestFit.choose(&hosts, &spec), Some(0));
        assert_eq!(WorstFit.choose(&hosts, &spec), Some(0));
    }

    #[test]
    fn placement_is_transactional_on_host_exhaustion() {
        let config = DatacenterConfig::paper_default().with_hosts(1, 2, 4.0);
        let mut dc = Datacenter::new(&config);
        dc.place_allocation(&nano_pair()).expect("two nanos fit");
        assert_eq!(dc.placements().len(), 2);
        assert_eq!(dc.hosts()[0].used_vcpus(), 2);

        // a 16-vCPU instance fits nowhere: typed error, standing placement
        // untouched
        let too_big = vec![(group(3), vec![(InstanceType::M4_4XLarge, 1)])];
        let error = dc.place_allocation(&too_big).unwrap_err();
        assert_eq!(
            error,
            PlacementError::NoHostFits {
                instance_type: InstanceType::M4_4XLarge,
                hosts: 1
            }
        );
        assert!(error.to_string().contains("m4.4xlarge"));
        let _: &dyn std::error::Error = &error;
        assert_eq!(
            dc.placements().len(),
            2,
            "failed transaction changed nothing"
        );
        assert_eq!(dc.hosts()[0].used_vcpus(), 2);
    }

    #[test]
    fn consolidation_meters_less_energy_than_spreading_at_equal_instances() {
        let allocation = vec![
            (group(1), vec![(InstanceType::T2Nano, 1)]),
            (group(2), vec![(InstanceType::T2Large, 1)]),
            (group(3), vec![(InstanceType::M4_4XLarge, 1)]),
        ];
        let mut packed = Datacenter::new(
            &DatacenterConfig::paper_default().with_placement(PlacementKind::BestFit),
        );
        let mut spread = Datacenter::new(
            &DatacenterConfig::paper_default().with_placement(PlacementKind::WorstFit),
        );
        assert_eq!(packed.place_allocation(&allocation).unwrap(), 3);
        assert_eq!(spread.place_allocation(&allocation).unwrap(), 3);
        assert_eq!(packed.active_hosts(), 1, "best-fit consolidates");
        assert_eq!(spread.active_hosts(), 3, "worst-fit spreads");
        let packed_wh = packed.energy_wh(1.0);
        let spread_wh = spread.energy_wh(1.0);
        assert!(
            spread_wh > packed_wh,
            "idle draw per powered host: {spread_wh} <= {packed_wh}"
        );
    }

    #[test]
    fn under_provisioned_demand_is_a_violation_and_overload_drops() {
        let mut dc = Datacenter::new(&DatacenterConfig::paper_default());
        dc.place_allocation(&[(group(1), vec![(InstanceType::T2Nano, 1)])])
            .unwrap();
        // within capacity: no violation
        let ok = dc.assess(&[GroupDemand {
            group: group(1),
            demand: 5,
            capacity: 10,
        }]);
        assert_eq!(ok.violations, 0);
        assert!(ok.latency_ms > 0.0);
        // demand beyond the provisioned capacity: violated
        let violated = dc.assess(&[GroupDemand {
            group: group(1),
            demand: 11,
            capacity: 10,
        }]);
        assert_eq!(violated.violations, 1);
        assert!(violated.latency_ms > ok.latency_ms);
        // demand beyond the admission limit: users drop (t2.nano admits 60)
        let flooded = dc.assess(&[GroupDemand {
            group: group(1),
            demand: 100,
            capacity: 10,
        }]);
        assert_eq!(flooded.dropped_users, 40);
        // a group nothing serves: violated, everything dropped
        let unserved = dc.assess(&[GroupDemand {
            group: group(2),
            demand: 7,
            capacity: 0,
        }]);
        assert_eq!(unserved.violations, 1);
        assert_eq!(unserved.dropped_users, 7);
        // an empty slot scores nothing
        let idle = dc.assess(&[GroupDemand {
            group: group(1),
            demand: 0,
            capacity: 10,
        }]);
        assert_eq!(idle, SlaAssessment::default());
    }

    #[test]
    fn co_location_inflates_the_latency_signal() {
        let allocation = vec![
            (group(1), vec![(InstanceType::T2Nano, 1)]),
            (group(3), vec![(InstanceType::M4_4XLarge, 2)]),
        ];
        let mut packed = Datacenter::new(
            &DatacenterConfig::paper_default().with_placement(PlacementKind::BestFit),
        );
        let mut spread = Datacenter::new(
            &DatacenterConfig::paper_default().with_placement(PlacementKind::WorstFit),
        );
        packed.place_allocation(&allocation).unwrap();
        spread.place_allocation(&allocation).unwrap();
        let demand = [GroupDemand {
            group: group(1),
            demand: 8,
            capacity: 20,
        }];
        let packed_sla = packed.assess(&demand);
        let spread_sla = spread.assess(&demand);
        assert!(
            packed_sla.latency_ms > spread_sla.latency_ms,
            "co-located nano must read slower: {} <= {}",
            packed_sla.latency_ms,
            spread_sla.latency_ms
        );
    }

    #[test]
    fn energy_and_power_interpolate_linearly() {
        let power = PowerModel::linear(100.0, 300.0);
        assert_eq!(power.power_watts(0.0), 100.0);
        assert_eq!(power.power_watts(0.5), 200.0);
        assert_eq!(power.power_watts(1.0), 300.0);
        assert_eq!(power.power_watts(2.0), 300.0, "clamped above full load");

        let mut dc = Datacenter::new(
            &DatacenterConfig::paper_default()
                .with_hosts(2, 2, 8.0)
                .with_power(power),
        );
        assert_eq!(dc.energy_wh(1.0), 0.0, "empty hosts are powered off");
        dc.place_allocation(&nano_pair()).unwrap();
        // both nanos pack onto host 0 under first fit: one host at 100 %
        assert_eq!(dc.active_hosts(), 1);
        assert_eq!(dc.energy_wh(1.0), 300.0);
        assert_eq!(dc.energy_wh(0.5), 150.0);
        dc.clear();
        assert_eq!(dc.energy_wh(1.0), 0.0);
        assert!(dc.placements().is_empty());
    }

    #[test]
    fn placement_kind_labels_and_delegation() {
        assert_eq!(PlacementKind::FirstFit.to_string(), "first-fit");
        assert_eq!(PlacementKind::BestFit.to_string(), "best-fit");
        assert_eq!(PlacementKind::WorstFit.to_string(), "worst-fit");
        let hosts = vec![Host::new(0, 48, 192.0)];
        let spec = InstanceType::T2Nano.spec();
        for kind in PlacementKind::ALL {
            assert_eq!(kind.choose(&hosts, &spec), Some(0), "{kind}");
        }
    }
}
