//! Discrete-event simulation primitives.
//!
//! Time is a plain `f64` in milliseconds ([`SimTime`]); events are ordered by
//! time with a monotonically increasing sequence number as tie-breaker so
//! that simultaneous events are processed in insertion order (deterministic
//! replay).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds since the start of the experiment.
pub type SimTime = f64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
///
/// ```
/// use mca_cloudsim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(20.0, "b");
/// q.schedule(10.0, "a");
/// assert_eq!(q.pop(), Some((10.0, "a")));
/// assert_eq!(q.pop(), Some((20.0, "b")));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN (events must be orderable).
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest scheduled event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(3.0, 'b');
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((3.0, 'b')));
        assert_eq!(q.pop(), Some((5.0, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "late");
        q.schedule(1.0, "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(5.0, "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, 0u8);
    }
}
