//! Processor-sharing server model and load experiments.
//!
//! The response-time behaviour the paper characterizes in §VI-A and §VI-B has
//! three ingredients:
//!
//! 1. **Single-task speed** — set by the instance's per-core speed factor
//!    (Fig. 5 acceleration ratios).
//! 2. **Contention** — as more users offload concurrently, requests share the
//!    instance's cores and response times grow; the growth flattens for
//!    instances with more cores (Fig. 4). The paper's concurrent-mode bursts
//!    observe a *sub-linear* degradation (offloaded Dalvik workloads are not
//!    perfectly CPU-bound: I/O, VM multiplexing, short tasks), which we model
//!    as a slowdown of `max(1, (n / vcpus)^alpha)` with `alpha < 1`.
//! 3. **Saturation** — in an open system, once the offered arrival rate
//!    exceeds the instance's sustainable throughput the backlog explodes and
//!    requests are dropped (Fig. 8b/8c). The open-loop simulation reproduces
//!    this with an event-driven, capacity-conserving processor-sharing queue
//!    with bounded admission.

use crate::credits::CpuCreditModel;
use crate::instance::{InstanceSpec, InstanceType};
use mca_offload::TaskPool;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Instance type backing the server.
    pub instance_type: InstanceType,
    /// Sub-linear contention exponent (`alpha`); 0.45 reproduces the
    /// degradation slopes of Fig. 4 and the ≈2.5 s perceived response time of
    /// Fig. 9b under a 50-user background load.
    pub contention_exponent: f64,
    /// Fixed per-request overhead of the Dalvik surrogate (process creation,
    /// APK dispatch), milliseconds.
    pub per_request_overhead_ms: f64,
    /// Multiplicative execution-time noise (standard deviation of a unit-mean
    /// factor).
    pub service_noise: f64,
    /// Maximum number of requests admitted simultaneously; beyond this the
    /// server drops incoming requests (Fig. 8c).
    pub max_outstanding: usize,
}

impl ServerConfig {
    /// Default configuration for an instance type.
    pub fn for_instance(instance_type: InstanceType) -> Self {
        let spec = instance_type.spec();
        Self {
            instance_type,
            contention_exponent: 0.45,
            per_request_overhead_ms: 18.0,
            service_noise: 0.10,
            // Roughly sixty outstanding dalvikvm processes per core before the
            // surrogate starts refusing work.
            max_outstanding: 60 * spec.vcpus.max(1) as usize,
        }
    }
}

impl Snapshot for ServerConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instance_type.encode(out);
        self.contention_exponent.encode(out);
        self.per_request_overhead_ms.encode(out);
        self.service_noise.encode(out);
        self.max_outstanding.encode(out);
    }
}

impl Restore for ServerConfig {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            instance_type: InstanceType::decode(cur)?,
            contention_exponent: f64::decode(cur)?,
            per_request_overhead_ms: f64::decode(cur)?,
            service_noise: f64::decode(cur)?,
            max_outstanding: usize::decode(cur)?,
        })
    }
}

/// A simulated cloud server (one instance running the Dalvik-x86 surrogate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    config: ServerConfig,
    spec: InstanceSpec,
    credits: Option<CpuCreditModel>,
}

impl Server {
    /// Creates a server with the default configuration for `instance_type`.
    pub fn new(instance_type: InstanceType) -> Self {
        Self::with_config(ServerConfig::for_instance(instance_type))
    }

    /// Creates a server with an explicit configuration.
    pub fn with_config(config: ServerConfig) -> Self {
        Self {
            config,
            spec: config.instance_type.spec(),
            credits: CpuCreditModel::for_instance(config.instance_type),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The instance specification backing the server.
    pub fn spec(&self) -> &InstanceSpec {
        &self.spec
    }

    /// Current CPU-credit state, if the instance is burstable.
    pub fn credits(&self) -> Option<&CpuCreditModel> {
        self.credits.as_ref()
    }

    /// Serializes the server: its configuration plus the live credit
    /// balance (the spec is derived from the type and not checkpointed).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.credits.encode(out);
    }

    /// Rebuilds a server from [`Server::encode_state`], re-deriving the spec
    /// and overlaying the checkpointed credit balance.
    pub fn decode_state(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let config = ServerConfig::decode(cur)?;
        let credits = Option::<CpuCreditModel>::decode(cur)?;
        let mut server = Self::with_config(config);
        if server.credits.is_some() != credits.is_some() {
            return Err(SnapshotError::Malformed {
                context: "credit model disagrees with the instance family",
            });
        }
        server.credits = credits;
        Ok(server)
    }

    /// Contention slowdown factor with `concurrent` requests in service.
    pub fn contention_slowdown(&self, concurrent: usize) -> f64 {
        let n = concurrent.max(1) as f64;
        let c = f64::from(self.spec.vcpus.max(1));
        if n <= c {
            1.0
        } else {
            (n / c).powf(self.config.contention_exponent)
        }
    }

    /// Expected (noise-free) execution time of `work_units` of work while
    /// `concurrent` requests are in service, milliseconds.
    pub fn expected_execution_ms(&self, work_units: f64, concurrent: usize) -> f64 {
        let throttle = self.credits.map(|c| c.speed_multiplier()).unwrap_or(1.0);
        let speed = self.spec.sustained_core_speed() * throttle;
        self.config.per_request_overhead_ms
            + work_units / speed.max(1e-9) * self.contention_slowdown(concurrent)
    }

    /// Samples a noisy execution time for one request.
    pub fn sample_execution_ms<R: Rng + ?Sized>(
        &self,
        work_units: f64,
        concurrent: usize,
        rng: &mut R,
    ) -> f64 {
        let noise = 1.0 + self.config.service_noise * standard_normal(rng);
        self.expected_execution_ms(work_units, concurrent) * noise.max(0.2)
    }

    /// Sustainable throughput of the server in requests per second for tasks
    /// of `mean_work_units` work.
    pub fn sustainable_rate_hz(&self, mean_work_units: f64) -> f64 {
        1_000.0 * self.spec.aggregate_throughput() / mean_work_units.max(1e-9)
    }

    /// Largest number of concurrent users the server can serve while keeping
    /// the expected response time of a task of `work_units` at or below
    /// `target_ms` (the paper's per-group capacity `K_s`).
    pub fn capacity_under(&self, work_units: f64, target_ms: f64) -> usize {
        if self.expected_execution_ms(work_units, 1) > target_ms {
            return 0;
        }
        // Expected execution time is monotone in the concurrency, so binary
        // search over a generous range.
        let (mut lo, mut hi) = (1usize, 100_000usize);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.expected_execution_ms(work_units, mid) <= target_ms {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Runs the paper's concurrent benchmarking mode: `users` concurrent
    /// emulated devices repeatedly offloading random tasks from `pool` for
    /// `duration_ms`. Advances the CPU-credit model for burstable instances.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero.
    pub fn run_closed_loop<R: Rng + ?Sized>(
        &mut self,
        pool: &TaskPool,
        users: usize,
        duration_ms: f64,
        rng: &mut R,
    ) -> ClosedLoopResult {
        assert!(users > 0, "closed loop requires at least one user");
        let mut samples = Vec::new();
        let mut elapsed = 0.0;
        let utilization = (users as f64 / f64::from(self.spec.vcpus.max(1))).min(1.0);
        let mut throttled_time = 0.0;
        while elapsed < duration_ms {
            let work = pool.draw(rng).work_units();
            let response = self.sample_execution_ms(work, users, rng);
            samples.push(response);
            // One sample advances wall-clock time by one response time (all
            // users progress roughly in lock step in the concurrent mode).
            if let Some(credits) = self.credits.as_mut() {
                let multiplier = credits.advance(response, utilization, self.spec.vcpus);
                if multiplier < 1.0 {
                    throttled_time += response;
                }
            }
            elapsed += response;
        }
        ClosedLoopResult::from_samples(users, samples, throttled_time / elapsed.max(1e-9))
    }

    /// Runs the paper's inter-arrival mode as an open-loop, event-driven
    /// processor-sharing simulation: Poisson arrivals at `arrival_hz` for
    /// `duration_ms`, with requests dropped whenever the number of
    /// outstanding requests reaches the admission limit (Fig. 8b/8c).
    ///
    /// # Panics
    ///
    /// Panics if `arrival_hz` is not strictly positive.
    pub fn run_open_loop<R: Rng + ?Sized>(
        &mut self,
        pool: &TaskPool,
        arrival_hz: f64,
        duration_ms: f64,
        rng: &mut R,
    ) -> OpenLoopResult {
        assert!(arrival_hz > 0.0, "arrival rate must be positive");

        let speed = self.spec.sustained_core_speed().max(1e-9);
        let cores = f64::from(self.spec.vcpus.max(1));
        let mean_arrival_ms = 1_000.0 / arrival_hz;

        // Remaining service demand is expressed in dedicated-core
        // milliseconds; with `n` active requests each progresses at
        // `min(1, cores / n)` dedicated-core ms per wall-clock ms.
        let mut active: Vec<ActiveRequest> = Vec::new();
        let mut now = 0.0f64;
        let mut next_arrival = sample_exponential(mean_arrival_ms, rng);
        let mut offered = 0usize;
        let mut dropped = 0usize;
        let mut response_times = Vec::new();

        loop {
            let share = if active.is_empty() {
                1.0
            } else {
                (cores / active.len() as f64).min(1.0)
            };
            let next_completion = active
                .iter()
                .enumerate()
                .map(|(i, a)| (i, now + a.remaining_ms / share))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

            let arrivals_open = next_arrival <= duration_ms;
            match (arrivals_open, next_completion) {
                (false, None) => break,
                (true, None) => {
                    now = next_arrival;
                    offered += 1;
                    admit(
                        &mut active,
                        pool,
                        speed,
                        &self.config,
                        now,
                        &mut dropped,
                        rng,
                    );
                    next_arrival = now + sample_exponential(mean_arrival_ms, rng);
                }
                (arrival_possible, Some((idx, completion_at))) => {
                    if arrival_possible && next_arrival <= completion_at {
                        let dt = next_arrival - now;
                        progress(&mut active, dt * share);
                        now = next_arrival;
                        offered += 1;
                        admit(
                            &mut active,
                            pool,
                            speed,
                            &self.config,
                            now,
                            &mut dropped,
                            rng,
                        );
                        next_arrival = now + sample_exponential(mean_arrival_ms, rng);
                    } else {
                        let dt = completion_at - now;
                        progress(&mut active, dt * share);
                        now = completion_at;
                        let finished = active.swap_remove(idx);
                        response_times.push(now - finished.started_at);
                    }
                }
            }
        }

        let utilization = (arrival_hz / self.sustainable_rate_hz(pool.mean_work_units())).min(1.0);
        if let Some(credits) = self.credits.as_mut() {
            credits.advance(duration_ms, utilization, self.spec.vcpus);
        }

        OpenLoopResult::new(arrival_hz, offered, dropped, response_times)
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveRequest {
    remaining_ms: f64,
    started_at: f64,
}

fn admit<R: Rng + ?Sized>(
    active: &mut Vec<ActiveRequest>,
    pool: &TaskPool,
    speed: f64,
    config: &ServerConfig,
    now: f64,
    dropped: &mut usize,
    rng: &mut R,
) {
    if active.len() >= config.max_outstanding {
        *dropped += 1;
    } else {
        let work = pool.draw(rng).work_units();
        let service_ms = config.per_request_overhead_ms + work / speed;
        active.push(ActiveRequest {
            remaining_ms: service_ms,
            started_at: now,
        });
    }
}

fn progress(active: &mut [ActiveRequest], dedicated_ms: f64) {
    for a in active.iter_mut() {
        a.remaining_ms = (a.remaining_ms - dedicated_ms).max(0.0);
    }
}

fn sample_exponential<R: Rng + ?Sized>(mean_ms: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean_ms * u.ln()
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Result of a closed-loop (concurrent mode) experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopResult {
    /// Number of concurrent users emulated.
    pub users: usize,
    /// Individual response-time samples, ms.
    pub samples: Vec<f64>,
    /// Mean response time, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_dev_ms: f64,
    /// 5th percentile, ms.
    pub p5_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// Fraction of the experiment spent CPU-credit throttled.
    pub throttled_fraction: f64,
}

impl ClosedLoopResult {
    fn from_samples(users: usize, samples: Vec<f64>, throttled_fraction: f64) -> Self {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let std_dev = if sorted.len() > 1 {
            (sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (sorted.len() - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                0.0
            } else {
                sorted[((sorted.len() - 1) as f64 * q).round() as usize]
            }
        };
        Self {
            users,
            mean_ms: mean,
            std_dev_ms: std_dev,
            p5_ms: pct(0.05),
            p95_ms: pct(0.95),
            throttled_fraction,
            samples,
        }
    }
}

/// Result of an open-loop (inter-arrival mode) experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopResult {
    /// Offered arrival rate, Hz.
    pub arrival_hz: f64,
    /// Requests offered to the server.
    pub offered: usize,
    /// Requests rejected because the admission limit was reached.
    pub dropped: usize,
    /// Mean response time of completed requests, ms.
    pub mean_response_ms: f64,
    /// 95th percentile response time of completed requests, ms.
    pub p95_response_ms: f64,
    /// Fraction of offered requests that completed successfully.
    pub success_ratio: f64,
}

impl OpenLoopResult {
    fn new(arrival_hz: f64, offered: usize, dropped: usize, mut responses: Vec<f64>) -> Self {
        responses.sort_by(|a, b| a.partial_cmp(b).expect("responses are finite"));
        let mean = if responses.is_empty() {
            0.0
        } else {
            responses.iter().sum::<f64>() / responses.len() as f64
        };
        let p95 = if responses.is_empty() {
            0.0
        } else {
            responses[((responses.len() - 1) as f64 * 0.95).round() as usize]
        };
        let completed = offered.saturating_sub(dropped);
        Self {
            arrival_hz,
            offered,
            dropped,
            mean_response_ms: mean,
            p95_response_ms: p95,
            success_ratio: if offered == 0 {
                1.0
            } else {
                completed as f64 / offered as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::TaskSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minimax_pool() -> TaskPool {
        TaskPool::static_load(TaskSpec::paper_static_minimax())
    }

    #[test]
    fn single_request_response_matches_core_speed() {
        let server = Server::new(InstanceType::T2Small);
        let work = 100.0;
        let t = server.expected_execution_ms(work, 1);
        assert!((t - (18.0 + 100.0)).abs() < 1e-9);
        let faster = Server::new(InstanceType::M4_10XLarge);
        assert!(faster.expected_execution_ms(work, 1) < t);
    }

    #[test]
    fn fig5_single_task_acceleration_ratios() {
        let minimax = TaskSpec::paper_static_minimax().work_units();
        let l1 = Server::new(InstanceType::T2Small).expected_execution_ms(minimax, 1) - 18.0;
        let l2 = Server::new(InstanceType::T2Large).expected_execution_ms(minimax, 1) - 18.0;
        let l3 = Server::new(InstanceType::M4_4XLarge).expected_execution_ms(minimax, 1) - 18.0;
        assert!((l1 / l2 - 1.25).abs() < 0.02, "l1/l2 = {}", l1 / l2);
        assert!((l1 / l3 - 1.73).abs() < 0.02, "l1/l3 = {}", l1 / l3);
    }

    #[test]
    fn contention_grows_response_time_and_flattens_with_cores() {
        let nano = Server::new(InstanceType::T2Nano);
        let big = Server::new(InstanceType::M4_10XLarge);
        let work = 65.0;
        assert!(nano.expected_execution_ms(work, 100) > nano.expected_execution_ms(work, 10));
        assert!(nano.expected_execution_ms(work, 10) > nano.expected_execution_ms(work, 1));
        // the 40-core machine barely notices 30 users
        assert!(
            (big.expected_execution_ms(work, 30) - big.expected_execution_ms(work, 1)).abs() < 1.0
        );
        // relative degradation at 100 users is much larger on the small box
        let nano_ratio =
            nano.expected_execution_ms(work, 100) / nano.expected_execution_ms(work, 1);
        let big_ratio = big.expected_execution_ms(work, 100) / big.expected_execution_ms(work, 1);
        assert!(
            nano_ratio > 3.0 * big_ratio,
            "nano {nano_ratio} big {big_ratio}"
        );
    }

    #[test]
    fn fig9_background_load_gives_two_and_a_half_seconds_on_level1() {
        // User 32 (never promoted) perceives ≈2.5 s on acceleration level 1
        // under the 50-user background load of the 8-hour experiment.
        let server = Server::new(InstanceType::T2Nano);
        let work = TaskSpec::paper_static_minimax().work_units();
        let t = server.expected_execution_ms(work, 50);
        assert!(
            t > 1_800.0 && t < 3_200.0,
            "level-1 response under load: {t} ms"
        );
    }

    #[test]
    fn micro_slower_than_nano_under_load() {
        let nano = Server::new(InstanceType::T2Nano);
        let micro = Server::new(InstanceType::T2Micro);
        for users in [1usize, 10, 50, 100] {
            assert!(
                micro.expected_execution_ms(65.0, users) > nano.expected_execution_ms(65.0, users),
                "anomaly must hold at {users} users"
            );
        }
    }

    #[test]
    fn capacity_orders_instances() {
        let work = 65.0;
        let target = 500.0;
        let cap_micro = Server::new(InstanceType::T2Micro).capacity_under(work, target);
        let cap_small = Server::new(InstanceType::T2Small).capacity_under(work, target);
        let cap_large = Server::new(InstanceType::T2Large).capacity_under(work, target);
        let cap_m4 = Server::new(InstanceType::M4_10XLarge).capacity_under(work, target);
        assert!(cap_micro < cap_small, "{cap_micro} < {cap_small}");
        assert!(cap_small < cap_large, "{cap_small} < {cap_large}");
        assert!(cap_large < cap_m4, "{cap_large} < {cap_m4}");
        assert!(cap_micro >= 1);
    }

    #[test]
    fn capacity_zero_when_single_request_misses_target() {
        let server = Server::new(InstanceType::T2Micro);
        assert_eq!(server.capacity_under(10_000.0, 100.0), 0);
    }

    #[test]
    fn closed_loop_produces_samples_and_matches_expectation() {
        let mut server = Server::new(InstanceType::T2Medium);
        let mut rng = StdRng::seed_from_u64(1);
        let result = server.run_closed_loop(&minimax_pool(), 30, 120_000.0, &mut rng);
        assert!(result.samples.len() > 20);
        assert_eq!(result.users, 30);
        let expected = Server::new(InstanceType::T2Medium)
            .expected_execution_ms(TaskSpec::paper_static_minimax().work_units(), 30);
        assert!(
            (result.mean_ms - expected).abs() / expected < 0.25,
            "mean {} vs expected {expected}",
            result.mean_ms
        );
        assert!(result.std_dev_ms > 0.0);
        assert!(result.p95_ms >= result.mean_ms);
        assert!(result.p5_ms <= result.mean_ms);
    }

    #[test]
    fn open_loop_below_saturation_has_no_drops_and_low_latency() {
        let mut server = Server::new(InstanceType::T2Large);
        let mut rng = StdRng::seed_from_u64(2);
        let pool = TaskPool::paper_default();
        let result = server.run_open_loop(&pool, 4.0, 60_000.0, &mut rng);
        assert!(result.offered > 150);
        assert_eq!(result.dropped, 0, "4 Hz is far below the ~38 Hz capacity");
        assert!(result.success_ratio > 0.999);
        assert!(
            result.mean_response_ms < 200.0,
            "mean {}",
            result.mean_response_ms
        );
    }

    #[test]
    fn open_loop_saturates_between_32_and_128_hz() {
        // Fig. 8b: t2.large keeps up until 32 Hz; at 128 Hz it is far beyond
        // capacity, response time explodes and requests drop.
        let pool = TaskPool::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut at = |hz: f64| {
            let mut server = Server::new(InstanceType::T2Large);
            server.run_open_loop(&pool, hz, 60_000.0, &mut rng)
        };
        let low = at(16.0);
        let high = at(128.0);
        assert!(
            low.success_ratio > 0.95,
            "16 Hz success {}",
            low.success_ratio
        );
        assert!(
            high.success_ratio < 0.6,
            "128 Hz success {}",
            high.success_ratio
        );
        assert!(high.mean_response_ms > 5.0 * low.mean_response_ms);
        assert!(high.dropped > 0);
    }

    #[test]
    fn open_loop_response_time_plateaus_at_queue_limit() {
        let pool = TaskPool::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut server = Server::new(InstanceType::T2Large);
        let result = server.run_open_loop(&pool, 512.0, 20_000.0, &mut rng);
        // Response time is bounded by (queue limit × mean service time).
        let bound = server.config().max_outstanding as f64
            * (pool.mean_work_units() / server.spec().sustained_core_speed() + 40.0)
            * 1.6;
        assert!(
            result.mean_response_ms < bound,
            "mean {} bound {bound}",
            result.mean_response_ms
        );
        assert!(result.p95_response_ms >= result.mean_response_ms);
    }

    #[test]
    fn sustainable_rate_scales_with_cores_and_speed() {
        let pool = TaskPool::paper_default();
        let small = Server::new(InstanceType::T2Small).sustainable_rate_hz(pool.mean_work_units());
        let large = Server::new(InstanceType::T2Large).sustainable_rate_hz(pool.mean_work_units());
        let m4 = Server::new(InstanceType::M4_10XLarge).sustainable_rate_hz(pool.mean_work_units());
        assert!(large > 2.0 * small, "two faster cores");
        assert!(m4 > 20.0 * small);
        // t2.large knee lands in the 32–64 Hz band of Fig. 8b
        assert!(
            large > 30.0 && large < 64.0,
            "t2.large saturation {large} Hz"
        );
    }

    #[test]
    fn noise_keeps_samples_positive() {
        let server = Server::new(InstanceType::T2Nano);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            assert!(server.sample_execution_ms(10.0, 5, &mut rng) > 0.0);
        }
    }
}
