//! Instance characterization and acceleration-level classification (§VI-A).
//!
//! The paper answers "what is the effect of code execution when outsourced to
//! the cloud by multiple devices?" by stressing each instance type with the
//! simulator's concurrent mode at load levels 1, 10, 20, …, 100 users for
//! three hours per server, and then classifying instances into acceleration
//! levels: "when the minimum level of acceleration is defined, e.g., 500
//! milliseconds, all the available instances are sorted in an ascending manner
//! based on their capacity to handle that response time … an acceleration
//! group is created for each capacity. Instances with the same capacity are
//! assigned to the same group" (§IV-C-1).

use crate::instance::InstanceType;
use crate::server::Server;
use mca_offload::TaskPool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One measured point of the Fig. 4 characterization: statistics of the
/// response time at a fixed number of concurrent users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationPoint {
    /// Number of concurrent users applied.
    pub users: usize,
    /// Mean response time, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_dev_ms: f64,
    /// 5th percentile, ms.
    pub p5_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// Fraction of the measurement spent CPU-credit throttled.
    pub throttled_fraction: f64,
}

/// Characterization of one instance type across load levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceBenchmark {
    /// The instance type benchmarked.
    pub instance_type: InstanceType,
    /// Response-time target used for the capacity estimate, ms.
    pub response_target_ms: f64,
    /// Measured points, in increasing load order.
    pub points: Vec<CharacterizationPoint>,
    /// Estimated maximum number of concurrent users served within the target
    /// (the paper's `K_s`, expressed in concurrent users).
    pub capacity: usize,
}

impl InstanceBenchmark {
    /// The load levels of the paper's characterization (§VI-A-1).
    pub const PAPER_LOAD_LEVELS: [usize; 11] = [1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    /// Runs the concurrent-mode characterization of one instance.
    ///
    /// `duration_per_level_ms` is the simulated time spent at each load level
    /// (the paper uses a 3-hour run over all levels; the default figure
    /// harness uses a few simulated minutes per level, which is enough for
    /// stable statistics).
    pub fn run<R: Rng + ?Sized>(
        instance_type: InstanceType,
        pool: &TaskPool,
        load_levels: &[usize],
        duration_per_level_ms: f64,
        response_target_ms: f64,
        rng: &mut R,
    ) -> Self {
        let mut points = Vec::with_capacity(load_levels.len());
        for &users in load_levels {
            // Fresh server per level: the 1-minute inter-burst cool-down of the
            // paper's methodology lets credits recover between levels.
            let mut server = Server::new(instance_type);
            let result = server.run_closed_loop(pool, users.max(1), duration_per_level_ms, rng);
            points.push(CharacterizationPoint {
                users,
                mean_ms: result.mean_ms,
                std_dev_ms: result.std_dev_ms,
                p5_ms: result.p5_ms,
                p95_ms: result.p95_ms,
                throttled_fraction: result.throttled_fraction,
            });
        }
        let capacity = estimate_capacity(&points, response_target_ms);
        Self {
            instance_type,
            response_target_ms,
            points,
            capacity,
        }
    }

    /// Ratio between the mean response time at the highest and lowest load
    /// level — the "slope" the paper uses to compare instances in Fig. 4.
    pub fn degradation_ratio(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if first.mean_ms > 0.0 => last.mean_ms / first.mean_ms,
            _ => 1.0,
        }
    }
}

/// Estimates the number of concurrent users at which the mean response time
/// crosses `target_ms`, interpolating (or extrapolating with a power-law fit)
/// between measured points.
pub(crate) fn estimate_capacity(points: &[CharacterizationPoint], target_ms: f64) -> usize {
    if points.is_empty() {
        return 0;
    }
    if points[0].mean_ms > target_ms {
        return 0;
    }
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.mean_ms > target_ms {
            // log-log interpolation between a and b
            let t = ((target_ms.ln() - a.mean_ms.ln()) / (b.mean_ms.ln() - a.mean_ms.ln()))
                .clamp(0.0, 1.0);
            let users = (a.users as f64).ln() + t * ((b.users as f64).ln() - (a.users as f64).ln());
            return users.exp().floor().max(a.users as f64) as usize;
        }
    }
    // Even the heaviest measured load stays under the target: extrapolate a
    // power law `mean = a * users^b` fitted by least squares in log-log space
    // over every measured point with more than one user (measurement noise on
    // individual points would otherwise dominate the extrapolation).
    let n = points.len();
    if n < 2 {
        return points[0].users;
    }
    let fit_points: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.users >= 2 && p.mean_ms > 0.0)
        .map(|p| ((p.users as f64).ln(), p.mean_ms.ln()))
        .collect();
    let fit_points = if fit_points.len() >= 2 {
        fit_points
    } else {
        points
            .iter()
            .map(|p| ((p.users.max(1) as f64).ln(), p.mean_ms.max(1e-9).ln()))
            .collect()
    };
    let m = fit_points.len() as f64;
    let sx: f64 = fit_points.iter().map(|(x, _)| x).sum();
    let sy: f64 = fit_points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = fit_points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = fit_points.iter().map(|(x, y)| x * y).sum();
    let denom = m * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 100_000;
    }
    let slope = (m * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / m;
    if slope <= 1e-6 {
        // response time does not grow over the measured range
        return 100_000;
    }
    let users = ((target_ms.ln() - intercept) / slope).exp();
    users.floor().clamp(points[n - 1].users as f64, 100_000.0) as usize
}

/// One acceleration level: the set of instance types that provide the same
/// capacity under the response-time target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelerationLevel {
    /// Level index (0 = lowest acceleration).
    pub level: u8,
    /// Instance types belonging to the level.
    pub members: Vec<InstanceType>,
    /// Representative capacity of the level (maximum member capacity).
    pub capacity: usize,
}

/// The result of classifying benchmarked instances into acceleration levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelClassification {
    /// Response-time target the classification is based on, ms.
    pub response_target_ms: f64,
    /// Levels in ascending acceleration order.
    pub levels: Vec<AccelerationLevel>,
}

impl LevelClassification {
    /// Groups benchmarked instances by capacity: instances are sorted by
    /// ascending capacity and a new level starts whenever an instance's
    /// capacity exceeds the current level's representative capacity by more
    /// than `ratio_threshold` (instances "with the same capacity" share a
    /// level; measured capacities are never exactly equal, so similarity is
    /// judged by ratio).
    ///
    /// # Panics
    ///
    /// Panics if `ratio_threshold <= 1.0` or `benchmarks` is empty.
    pub fn classify(benchmarks: &[InstanceBenchmark], ratio_threshold: f64) -> Self {
        assert!(ratio_threshold > 1.0, "ratio threshold must exceed 1.0");
        assert!(
            !benchmarks.is_empty(),
            "classification requires at least one benchmark"
        );
        let target = benchmarks[0].response_target_ms;
        let mut sorted: Vec<&InstanceBenchmark> = benchmarks.iter().collect();
        sorted.sort_by_key(|b| b.capacity);

        let mut levels: Vec<AccelerationLevel> = Vec::new();
        for b in sorted {
            match levels.last_mut() {
                Some(level)
                    if (b.capacity as f64) <= (level.capacity.max(1) as f64) * ratio_threshold =>
                {
                    level.members.push(b.instance_type);
                    level.capacity = level.capacity.max(b.capacity);
                }
                _ => {
                    levels.push(AccelerationLevel {
                        level: levels.len() as u8,
                        members: vec![b.instance_type],
                        capacity: b.capacity,
                    });
                }
            }
        }
        Self {
            response_target_ms: target,
            levels,
        }
    }

    /// Number of distinct acceleration levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level index assigned to an instance type, if it was classified.
    pub fn level_of(&self, instance_type: InstanceType) -> Option<u8> {
        self.levels
            .iter()
            .find(|l| l.members.contains(&instance_type))
            .map(|l| l.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench(instance_type: InstanceType, rng: &mut StdRng) -> InstanceBenchmark {
        InstanceBenchmark::run(
            instance_type,
            &TaskPool::paper_default(),
            &[1, 10, 30, 50, 100],
            30_000.0,
            500.0,
            rng,
        )
    }

    #[test]
    fn response_time_grows_with_load_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = bench(InstanceType::T2Nano, &mut rng);
        assert_eq!(b.points.len(), 5);
        assert!(b
            .points
            .windows(2)
            .all(|w| w[1].mean_ms > w[0].mean_ms * 0.9));
        assert!(
            b.degradation_ratio() > 3.0,
            "ratio {}",
            b.degradation_ratio()
        );
    }

    #[test]
    fn big_instances_have_flat_curves() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = bench(InstanceType::M4_10XLarge, &mut rng);
        assert!(
            b.degradation_ratio() < 2.0,
            "ratio {}",
            b.degradation_ratio()
        );
        assert!(b.capacity > 1_000);
    }

    #[test]
    fn fig4_set_classifies_into_four_levels_with_micro_at_the_bottom() {
        let mut rng = StdRng::seed_from_u64(3);
        let benchmarks: Vec<InstanceBenchmark> = InstanceType::FIG4_SET
            .iter()
            .map(|&t| bench(t, &mut rng))
            .collect();
        let classes = LevelClassification::classify(&benchmarks, 1.5);
        assert_eq!(classes.num_levels(), 4, "{classes:?}");
        // Level 0 is t2.micro alone (the anomaly demotes it).
        assert_eq!(classes.level_of(InstanceType::T2Micro), Some(0));
        // nano and small share level 1.
        assert_eq!(classes.level_of(InstanceType::T2Nano), Some(1));
        assert_eq!(classes.level_of(InstanceType::T2Small), Some(1));
        // medium and large share level 2.
        assert_eq!(classes.level_of(InstanceType::T2Medium), Some(2));
        assert_eq!(classes.level_of(InstanceType::T2Large), Some(2));
        // the 40-core machine is level 3.
        assert_eq!(classes.level_of(InstanceType::M4_10XLarge), Some(3));
    }

    #[test]
    fn c4_sits_at_or_above_the_m4_level() {
        let mut rng = StdRng::seed_from_u64(4);
        let benchmarks: Vec<InstanceBenchmark> = [
            InstanceType::T2Small,
            InstanceType::T2Large,
            InstanceType::M4_4XLarge,
            InstanceType::C4_8XLarge,
        ]
        .iter()
        .map(|&t| bench(t, &mut rng))
        .collect();
        let classes = LevelClassification::classify(&benchmarks, 1.5);
        let m4 = classes.level_of(InstanceType::M4_4XLarge).unwrap();
        let c4 = classes.level_of(InstanceType::C4_8XLarge).unwrap();
        assert!(c4 >= m4, "c4 level {c4} must not be below m4 level {m4}");
        assert_eq!(classes.level_of(InstanceType::T2Small), Some(0));
    }

    #[test]
    fn capacity_estimation_interpolates() {
        let points = vec![
            CharacterizationPoint {
                users: 1,
                mean_ms: 100.0,
                std_dev_ms: 0.0,
                p5_ms: 0.0,
                p95_ms: 0.0,
                throttled_fraction: 0.0,
            },
            CharacterizationPoint {
                users: 10,
                mean_ms: 300.0,
                std_dev_ms: 0.0,
                p5_ms: 0.0,
                p95_ms: 0.0,
                throttled_fraction: 0.0,
            },
            CharacterizationPoint {
                users: 100,
                mean_ms: 900.0,
                std_dev_ms: 0.0,
                p5_ms: 0.0,
                p95_ms: 0.0,
                throttled_fraction: 0.0,
            },
        ];
        let cap = estimate_capacity(&points, 500.0);
        assert!(cap > 10 && cap < 100, "cap {cap}");
    }

    #[test]
    fn capacity_zero_when_even_one_user_misses_target() {
        let points = vec![CharacterizationPoint {
            users: 1,
            mean_ms: 800.0,
            std_dev_ms: 0.0,
            p5_ms: 0.0,
            p95_ms: 0.0,
            throttled_fraction: 0.0,
        }];
        assert_eq!(estimate_capacity(&points, 500.0), 0);
    }

    #[test]
    fn capacity_extrapolates_beyond_measured_range() {
        let points = vec![
            CharacterizationPoint {
                users: 50,
                mean_ms: 60.0,
                std_dev_ms: 0.0,
                p5_ms: 0.0,
                p95_ms: 0.0,
                throttled_fraction: 0.0,
            },
            CharacterizationPoint {
                users: 100,
                mean_ms: 80.0,
                std_dev_ms: 0.0,
                p5_ms: 0.0,
                p95_ms: 0.0,
                throttled_fraction: 0.0,
            },
        ];
        let cap = estimate_capacity(&points, 500.0);
        assert!(cap > 100, "cap {cap}");
    }

    #[test]
    #[should_panic(expected = "ratio threshold")]
    fn classify_rejects_bad_threshold() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = bench(InstanceType::T2Nano, &mut rng);
        let _ = LevelClassification::classify(&[b], 0.9);
    }
}
