//! The pool of running instances in the back-end.
//!
//! The back-end of Fig. 2 is "formed by multiple types of instances that are
//! allocated per hour"; the cloud account can run at most `CC` instances at
//! once (20 for a standard Amazon account, §IV-C). The pool tracks the running
//! instances, enforces the cap, and bills them through [`BillingMeter`].

use crate::billing::BillingMeter;
use crate::instance::InstanceType;
use crate::server::Server;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default per-account instance cap (`CC` in the allocation model).
pub const DEFAULT_ACCOUNT_CAP: usize = 20;

/// Errors returned by pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Launching would exceed the account's instance cap.
    AccountCapReached {
        /// The cap in force.
        cap: usize,
    },
    /// The referenced instance id is not running.
    UnknownInstance {
        /// The offending id.
        id: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::AccountCapReached { cap } => {
                write!(f, "cloud account cap of {cap} instances reached")
            }
            PoolError::UnknownInstance { id } => write!(f, "instance {id} is not running"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A running instance in the back-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningInstance {
    /// Pool-unique id of the instance.
    pub id: u64,
    /// The instance type.
    pub instance_type: InstanceType,
    /// Simulation time at which the instance was launched, ms.
    pub launched_at_ms: f64,
    /// The simulated server running on the instance.
    pub server: Server,
}

/// The back-end instance pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstancePool {
    instances: Vec<RunningInstance>,
    next_id: u64,
    account_cap: usize,
    billing: BillingMeter,
}

impl InstancePool {
    /// Creates an empty pool with the default 20-instance account cap.
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_ACCOUNT_CAP)
    }

    /// Creates an empty pool with an explicit account cap.
    pub fn with_cap(account_cap: usize) -> Self {
        Self {
            instances: Vec::new(),
            next_id: 1,
            account_cap,
            billing: BillingMeter::new(),
        }
    }

    /// The account cap (`CC`).
    pub fn account_cap(&self) -> usize {
        self.account_cap
    }

    /// Number of running instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` when no instance is running.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The running instances.
    pub fn instances(&self) -> &[RunningInstance] {
        &self.instances
    }

    /// Mutable access to a running instance's server.
    pub fn server_mut(&mut self, id: u64) -> Option<&mut Server> {
        self.instances
            .iter_mut()
            .find(|i| i.id == id)
            .map(|i| &mut i.server)
    }

    /// Billing accumulated so far.
    pub fn billing(&self) -> &BillingMeter {
        &self.billing
    }

    /// Launches one instance of `instance_type` at simulation time `now_ms`.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::AccountCapReached`] when the cap would be
    /// exceeded.
    pub fn launch(&mut self, instance_type: InstanceType, now_ms: f64) -> Result<u64, PoolError> {
        if self.instances.len() >= self.account_cap {
            return Err(PoolError::AccountCapReached {
                cap: self.account_cap,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.instances.push(RunningInstance {
            id,
            instance_type,
            launched_at_ms: now_ms,
            server: Server::new(instance_type),
        });
        Ok(id)
    }

    /// Terminates the instance with the given id at time `now_ms`, billing the
    /// elapsed (rounded-up) hours.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownInstance`] if no such instance is running.
    pub fn terminate(&mut self, id: u64, now_ms: f64) -> Result<(), PoolError> {
        let idx = self
            .instances
            .iter()
            .position(|i| i.id == id)
            .ok_or(PoolError::UnknownInstance { id })?;
        let instance = self.instances.remove(idx);
        let hours = (now_ms - instance.launched_at_ms).max(0.0) / 3_600_000.0;
        self.billing.bill(instance.instance_type, 1, hours);
        Ok(())
    }

    /// Replaces the whole fleet with the given allocation (counts per type),
    /// terminating instances that are no longer needed and launching the
    /// missing ones. This is what the resource allocator applies at the start
    /// of each provisioning interval. Returns the ids of newly launched
    /// instances.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::AccountCapReached`] if the requested allocation
    /// exceeds the cap (nothing is changed in that case).
    pub fn apply_allocation(
        &mut self,
        allocation: &[(InstanceType, usize)],
        now_ms: f64,
    ) -> Result<Vec<u64>, PoolError> {
        let total: usize = allocation.iter().map(|(_, n)| *n).sum();
        if total > self.account_cap {
            return Err(PoolError::AccountCapReached {
                cap: self.account_cap,
            });
        }
        // Terminate surplus instances per type.
        for &(ty, wanted) in allocation {
            let mut running: Vec<u64> = self
                .instances
                .iter()
                .filter(|i| i.instance_type == ty)
                .map(|i| i.id)
                .collect();
            while running.len() > wanted {
                let id = running.pop().expect("non-empty by loop condition");
                self.terminate(id, now_ms)?;
            }
        }
        // Terminate instances of types not present in the allocation at all.
        let keep: Vec<InstanceType> = allocation.iter().map(|(t, _)| *t).collect();
        let to_kill: Vec<u64> = self
            .instances
            .iter()
            .filter(|i| !keep.contains(&i.instance_type))
            .map(|i| i.id)
            .collect();
        for id in to_kill {
            self.terminate(id, now_ms)?;
        }
        // Launch what is missing.
        let mut launched = Vec::new();
        for &(ty, wanted) in allocation {
            let have = self
                .instances
                .iter()
                .filter(|i| i.instance_type == ty)
                .count();
            for _ in have..wanted {
                launched.push(self.launch(ty, now_ms)?);
            }
        }
        Ok(launched)
    }

    /// Counts running instances per type.
    pub fn count_by_type(&self) -> Vec<(InstanceType, usize)> {
        let mut counts: Vec<(InstanceType, usize)> = Vec::new();
        for i in &self.instances {
            match counts.iter_mut().find(|(t, _)| *t == i.instance_type) {
                Some((_, n)) => *n += 1,
                None => counts.push((i.instance_type, 1)),
            }
        }
        counts
    }

    /// Terminates every running instance (end of the experiment), billing
    /// elapsed hours.
    pub fn terminate_all(&mut self, now_ms: f64) {
        let ids: Vec<u64> = self.instances.iter().map(|i| i.id).collect();
        for id in ids {
            let _ = self.terminate(id, now_ms);
        }
    }
}

impl Default for InstancePool {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for RunningInstance {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.instance_type.encode(out);
        self.launched_at_ms.encode(out);
        self.server.encode_state(out);
    }
}

impl Restore for RunningInstance {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            id: u64::decode(cur)?,
            instance_type: InstanceType::decode(cur)?,
            launched_at_ms: f64::decode(cur)?,
            server: Server::decode_state(cur)?,
        })
    }
}

impl Snapshot for InstancePool {
    fn encode(&self, out: &mut Vec<u8>) {
        self.instances.encode(out);
        self.next_id.encode(out);
        self.account_cap.encode(out);
        self.billing.encode(out);
    }
}

impl Restore for InstancePool {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let instances = Vec::<RunningInstance>::decode(cur)?;
        let next_id = u64::decode(cur)?;
        let account_cap = usize::decode(cur)?;
        let billing = BillingMeter::decode(cur)?;
        if instances.len() > account_cap {
            return Err(SnapshotError::Malformed {
                context: "pool over its account cap",
            });
        }
        if instances.iter().any(|i| i.id >= next_id) {
            return Err(SnapshotError::Malformed {
                context: "running instance id from the future",
            });
        }
        Ok(Self {
            instances,
            next_id,
            account_cap,
            billing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_and_cap() {
        let mut pool = InstancePool::with_cap(2);
        assert!(pool.is_empty());
        pool.launch(InstanceType::T2Nano, 0.0).unwrap();
        pool.launch(InstanceType::T2Large, 0.0).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.launch(InstanceType::T2Nano, 0.0),
            Err(PoolError::AccountCapReached { cap: 2 })
        );
    }

    #[test]
    fn default_cap_matches_amazon_standard_account() {
        assert_eq!(InstancePool::new().account_cap(), 20);
    }

    #[test]
    fn terminate_bills_rounded_hours() {
        let mut pool = InstancePool::new();
        let id = pool.launch(InstanceType::T2Medium, 0.0).unwrap();
        pool.terminate(id, 90.0 * 60_000.0).unwrap(); // 1.5 h -> billed 2 h
        assert_eq!(pool.billing().hours_for(InstanceType::T2Medium), 2.0);
        assert!(pool.is_empty());
        assert_eq!(
            pool.terminate(id, 0.0),
            Err(PoolError::UnknownInstance { id })
        );
    }

    #[test]
    fn apply_allocation_converges_to_target() {
        let mut pool = InstancePool::new();
        pool.apply_allocation(
            &[(InstanceType::T2Nano, 3), (InstanceType::T2Large, 1)],
            0.0,
        )
        .unwrap();
        assert_eq!(pool.len(), 4);
        // shrink nano, grow large, drop nothing else
        pool.apply_allocation(
            &[(InstanceType::T2Nano, 1), (InstanceType::T2Large, 2)],
            3_600_000.0,
        )
        .unwrap();
        let mut counts = pool.count_by_type();
        counts.sort_by_key(|(t, _)| *t);
        assert_eq!(
            counts,
            vec![(InstanceType::T2Nano, 1), (InstanceType::T2Large, 2)]
        );
        // the two terminated nanos were billed one hour each
        assert_eq!(pool.billing().hours_for(InstanceType::T2Nano), 2.0);
    }

    #[test]
    fn apply_allocation_removes_types_not_listed() {
        let mut pool = InstancePool::new();
        pool.apply_allocation(&[(InstanceType::T2Small, 2)], 0.0)
            .unwrap();
        pool.apply_allocation(&[(InstanceType::M4_4XLarge, 1)], 1_000.0)
            .unwrap();
        assert_eq!(pool.count_by_type(), vec![(InstanceType::M4_4XLarge, 1)]);
    }

    #[test]
    fn apply_allocation_respects_cap_atomically() {
        let mut pool = InstancePool::with_cap(3);
        pool.apply_allocation(&[(InstanceType::T2Nano, 2)], 0.0)
            .unwrap();
        let err = pool
            .apply_allocation(
                &[(InstanceType::T2Nano, 2), (InstanceType::T2Large, 2)],
                1.0,
            )
            .unwrap_err();
        assert_eq!(err, PoolError::AccountCapReached { cap: 3 });
        // nothing changed
        assert_eq!(pool.count_by_type(), vec![(InstanceType::T2Nano, 2)]);
    }

    #[test]
    fn terminate_all_empties_the_pool_and_bills_everything() {
        let mut pool = InstancePool::new();
        pool.launch(InstanceType::T2Nano, 0.0).unwrap();
        pool.launch(InstanceType::C4_8XLarge, 0.0).unwrap();
        pool.terminate_all(30.0 * 60_000.0);
        assert!(pool.is_empty());
        assert_eq!(pool.billing().total_hours(), 2.0);
        assert!(pool.billing().total_cost() > 1.9);
    }

    #[test]
    fn server_mut_gives_access_to_running_server() {
        let mut pool = InstancePool::new();
        let id = pool.launch(InstanceType::T2Small, 0.0).unwrap();
        assert!(pool.server_mut(id).is_some());
        assert!(pool.server_mut(999).is_none());
    }

    #[test]
    fn terminate_on_an_exact_hour_boundary_bills_one_hour() {
        // eleven 1/11-hour provisioning slots accumulate float residue: the
        // sum is 3_600_000.000000001 ms, a hair past the hour. A tenant
        // decommissioned on that boundary owes one hour, not two.
        let boundary: f64 = (0..11).map(|_| 3_600_000.0f64 / 11.0).sum();
        assert!(boundary > 3_600_000.0, "the test needs the residue");
        let mut pool = InstancePool::new();
        let id = pool.launch(InstanceType::T2Large, 0.0).unwrap();
        pool.terminate(id, boundary).unwrap();
        assert_eq!(pool.billing().hours_for(InstanceType::T2Large), 1.0);
    }

    #[test]
    fn pool_errors_display_and_implement_error() {
        let cap = PoolError::AccountCapReached { cap: 20 };
        assert_eq!(cap.to_string(), "cloud account cap of 20 instances reached");
        let unknown = PoolError::UnknownInstance { id: 7 };
        assert_eq!(unknown.to_string(), "instance 7 is not running");
        // both pool and placement errors present the std error interface
        let _: &dyn std::error::Error = &cap;
        let _: &dyn std::error::Error = &unknown;
        let placement = crate::datacenter::PlacementError::NoHostFits {
            instance_type: InstanceType::T2Nano,
            hosts: 0,
        };
        let _: &dyn std::error::Error = &placement;
    }

    #[test]
    fn cap_hit_leaves_pool_and_placement_unchanged() {
        use crate::datacenter::{Datacenter, DatacenterConfig};
        // the pool transaction and the placement transaction fail the same
        // way: typed error, state exactly as before
        let mut pool = InstancePool::with_cap(3);
        let mut dc = Datacenter::new(&DatacenterConfig::paper_default());
        let modest = vec![(
            mca_offload::AccelerationGroupId(1),
            vec![(InstanceType::T2Nano, 2)],
        )];
        pool.apply_allocation(&[(InstanceType::T2Nano, 2)], 0.0)
            .unwrap();
        dc.place_allocation(&modest).unwrap();
        let placed_before = dc.placements().to_vec();

        // 21 instances break the pool cap before any placement is attempted
        let oversized = [(InstanceType::T2Nano, 21)];
        let err = pool.apply_allocation(&oversized, 1.0).unwrap_err();
        assert_eq!(err, PoolError::AccountCapReached { cap: 3 });
        assert_eq!(pool.count_by_type(), vec![(InstanceType::T2Nano, 2)]);
        assert_eq!(pool.billing().total_hours(), 0.0, "no spurious billing");
        assert_eq!(dc.placements(), placed_before.as_slice());
    }
}
