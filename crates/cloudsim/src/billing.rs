//! Hourly billing of allocated instances.
//!
//! §IV: "A provisioned instance is billed by hour by most of the cloud
//! vendors" — the allocation model exists precisely because every provisioning
//! interval costs real money. The meter accumulates instance-hours per type
//! and reports the total bill, which the allocation benchmarks compare across
//! policies.

use crate::instance::InstanceType;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates billed instance-hours per instance type.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BillingMeter {
    hours: BTreeMap<InstanceType, f64>,
}

impl BillingMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bills `count` instances of `instance_type` for `hours` hours each.
    /// Partial hours are rounded **up** per instance-allocation, as cloud
    /// vendors do. Durations within float residue of a whole hour are
    /// snapped to it first, so a tenant decommissioned *exactly* on an hour
    /// boundary — whose elapsed time sums to, say, `1.0000000000000002`
    /// hours of accumulated slot lengths — is not billed the next hour.
    pub fn bill(&mut self, instance_type: InstanceType, count: usize, hours: f64) {
        let raw = hours.max(0.0);
        let nearest = raw.round();
        let whole = if (raw - nearest).abs() < 1e-9 {
            nearest
        } else {
            raw.ceil()
        };
        let billed = whole.max(if count > 0 && raw > 0.0 { 1.0 } else { 0.0 });
        if count == 0 || billed == 0.0 {
            return;
        }
        *self.hours.entry(instance_type).or_insert(0.0) += billed * count as f64;
    }

    /// Billed instance-hours for one type.
    pub fn hours_for(&self, instance_type: InstanceType) -> f64 {
        self.hours.get(&instance_type).copied().unwrap_or(0.0)
    }

    /// Total billed instance-hours across all types.
    pub fn total_hours(&self) -> f64 {
        self.hours.values().sum()
    }

    /// Total cost in USD.
    pub fn total_cost(&self) -> f64 {
        self.hours
            .iter()
            .map(|(t, h)| t.spec().cost_per_hour * h)
            .sum()
    }

    /// Cost attributable to one instance type, USD.
    pub fn cost_for(&self, instance_type: InstanceType) -> f64 {
        instance_type.spec().cost_per_hour * self.hours_for(instance_type)
    }

    /// Iterates over `(type, billed hours)` pairs in catalogue order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceType, f64)> + '_ {
        self.hours.iter().map(|(t, h)| (*t, *h))
    }
}

impl Snapshot for BillingMeter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hours.encode(out);
    }
}

impl Restore for BillingMeter {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            hours: BTreeMap::<InstanceType, f64>::decode(cur)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_hours_round_up() {
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Large, 2, 0.5);
        assert_eq!(m.hours_for(InstanceType::T2Large), 2.0);
        m.bill(InstanceType::T2Large, 1, 1.2);
        assert_eq!(m.hours_for(InstanceType::T2Large), 4.0);
    }

    #[test]
    fn hour_boundary_residue_does_not_bill_the_next_hour() {
        // eleven 1/11-hour slots accumulate to 1.0000000000000002 hours in
        // f64; a tenant decommissioned on that boundary owes one hour
        let hours = (0..11).map(|_| 3_600_000.0f64 / 11.0).sum::<f64>() / 3_600_000.0;
        assert!(hours > 1.0, "the test needs the residue to exist");
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Large, 1, hours);
        assert_eq!(m.hours_for(InstanceType::T2Large), 1.0);
        // a genuine partial hour still rounds up
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Large, 1, 1.001);
        assert_eq!(m.hours_for(InstanceType::T2Large), 2.0);
    }

    #[test]
    fn zero_count_or_duration_bills_nothing() {
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Nano, 0, 5.0);
        m.bill(InstanceType::T2Nano, 3, 0.0);
        assert_eq!(m.total_hours(), 0.0);
        assert_eq!(m.total_cost(), 0.0);
    }

    #[test]
    fn cost_uses_catalogue_prices() {
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Nano, 10, 1.0);
        m.bill(InstanceType::M4_10XLarge, 1, 1.0);
        let expected = 10.0 * 0.0063 + 2.377;
        assert!((m.total_cost() - expected).abs() < 1e-9);
        assert!((m.cost_for(InstanceType::M4_10XLarge) - 2.377).abs() < 1e-9);
    }

    #[test]
    fn big_instances_dominate_the_bill() {
        // The motivation for the allocation model: one m4.10xlarge hour costs
        // more than 300 t2.nano hours.
        let mut nano = BillingMeter::new();
        nano.bill(InstanceType::T2Nano, 300, 1.0);
        let mut m4 = BillingMeter::new();
        m4.bill(InstanceType::M4_10XLarge, 1, 1.0);
        assert!(m4.total_cost() > nano.total_cost());
    }

    #[test]
    fn iteration_and_accumulation() {
        let mut m = BillingMeter::new();
        m.bill(InstanceType::T2Small, 1, 2.0);
        m.bill(InstanceType::T2Medium, 2, 1.0);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(m.total_hours(), 4.0);
    }
}
