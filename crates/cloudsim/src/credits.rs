//! CPU-credit (burst) model for t2 instances.
//!
//! Amazon's t2 family earns CPU credits at a fixed rate and spends one credit
//! per vCPU-minute of full utilization; when the balance reaches zero the
//! instance is throttled to its baseline share. The paper's §VI-A-4 notes
//! that the opaque behaviour of this mechanism (combined with free-tier
//! multiplexing) is the most plausible cause of the t2.nano / t2.micro
//! anomaly. We model the mechanism explicitly so that long benchmarking runs
//! exercise it.

use crate::instance::InstanceType;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// Credit accumulator for one burstable instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCreditModel {
    /// Credits earned per hour.
    pub earn_rate_per_hour: f64,
    /// Maximum credit balance that can be accumulated.
    pub max_credits: f64,
    /// Baseline fraction of a core available when credits are exhausted.
    pub baseline_fraction: f64,
    balance: f64,
}

impl CpuCreditModel {
    /// The published credit parameters for a burstable type; `None` for
    /// fixed-performance (m4/c4) instances.
    pub fn for_instance(instance_type: InstanceType) -> Option<Self> {
        let (earn, max, baseline) = match instance_type {
            InstanceType::T2Nano => (3.0, 72.0, 0.05),
            InstanceType::T2Micro => (6.0, 144.0, 0.10),
            InstanceType::T2Small => (12.0, 288.0, 0.20),
            InstanceType::T2Medium => (24.0, 576.0, 0.40),
            InstanceType::T2Large => (36.0, 864.0, 0.60),
            _ => return None,
        };
        Some(Self {
            earn_rate_per_hour: earn,
            max_credits: max,
            baseline_fraction: baseline,
            balance: max, // instances launch with a full initial balance
        })
    }

    /// Current credit balance.
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Whether the instance is currently throttled to its baseline.
    pub fn is_throttled(&self) -> bool {
        self.balance <= 0.0
    }

    /// The speed multiplier to apply to the instance's cores right now.
    pub fn speed_multiplier(&self) -> f64 {
        if self.is_throttled() {
            self.baseline_fraction
        } else {
            1.0
        }
    }

    /// Advances the model by `elapsed_ms` of wall-clock time during which the
    /// instance ran at `utilization` (0–1, averaged over all vCPUs, where 1.0
    /// means every core fully busy). Returns the speed multiplier that applied
    /// during the interval.
    pub fn advance(&mut self, elapsed_ms: f64, utilization: f64, vcpus: u32) -> f64 {
        let hours = elapsed_ms.max(0.0) / 3_600_000.0;
        let multiplier = self.speed_multiplier();
        // one credit = one vCPU running at 100% for one minute
        let spent = utilization.clamp(0.0, 1.0) * f64::from(vcpus) * hours * 60.0;
        let earned = self.earn_rate_per_hour * hours;
        self.balance = (self.balance + earned - spent).clamp(0.0, self.max_credits);
        multiplier
    }
}

impl Snapshot for CpuCreditModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.earn_rate_per_hour.encode(out);
        self.max_credits.encode(out);
        self.baseline_fraction.encode(out);
        self.balance.encode(out);
    }
}

impl Restore for CpuCreditModel {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            earn_rate_per_hour: f64::decode(cur)?,
            max_credits: f64::decode(cur)?,
            baseline_fraction: f64::decode(cur)?,
            balance: f64::decode(cur)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_t2_family_is_burstable() {
        assert!(CpuCreditModel::for_instance(InstanceType::T2Nano).is_some());
        assert!(CpuCreditModel::for_instance(InstanceType::T2Large).is_some());
        assert!(CpuCreditModel::for_instance(InstanceType::M4_10XLarge).is_none());
        assert!(CpuCreditModel::for_instance(InstanceType::C4_8XLarge).is_none());
    }

    #[test]
    fn fresh_instance_is_not_throttled() {
        let m = CpuCreditModel::for_instance(InstanceType::T2Micro).unwrap();
        assert!(!m.is_throttled());
        assert_eq!(m.speed_multiplier(), 1.0);
        assert!(m.balance() > 0.0);
    }

    #[test]
    fn sustained_full_load_exhausts_credits() {
        let mut m = CpuCreditModel::for_instance(InstanceType::T2Nano).unwrap();
        // full utilization for 3 hours: spends 60/h, earns 3/h, initial 72
        for _ in 0..36 {
            m.advance(5.0 * 60_000.0, 1.0, 1);
        }
        assert!(m.is_throttled(), "balance {}", m.balance());
        assert_eq!(m.speed_multiplier(), 0.05);
    }

    #[test]
    fn idle_instance_recovers_credits() {
        let mut m = CpuCreditModel::for_instance(InstanceType::T2Small).unwrap();
        m.advance(3.0 * 3_600_000.0, 1.0, 1); // drain hard
        let drained = m.balance();
        m.advance(2.0 * 3_600_000.0, 0.0, 1); // idle for 2 h -> +24 credits
        assert!(m.balance() > drained);
        assert!(!m.is_throttled());
    }

    #[test]
    fn balance_is_capped() {
        let mut m = CpuCreditModel::for_instance(InstanceType::T2Medium).unwrap();
        m.advance(100.0 * 3_600_000.0, 0.0, 2);
        assert!((m.balance() - m.max_credits).abs() < 1e-9);
    }

    #[test]
    fn light_load_never_throttles() {
        // Utilization at the baseline fraction is sustainable indefinitely.
        let mut m = CpuCreditModel::for_instance(InstanceType::T2Large).unwrap();
        for _ in 0..1000 {
            m.advance(60_000.0, 0.25, 2); // 0.25*2 = 0.5 credits/min vs earn 0.6/min
            assert!(!m.is_throttled());
        }
    }

    #[test]
    fn advance_returns_multiplier_in_force_during_interval() {
        let mut m = CpuCreditModel::for_instance(InstanceType::T2Nano).unwrap();
        assert_eq!(m.advance(1_000.0, 1.0, 1), 1.0);
        // exhaust
        m.advance(10.0 * 3_600_000.0, 1.0, 1);
        assert_eq!(m.advance(1_000.0, 1.0, 1), 0.05);
    }
}
