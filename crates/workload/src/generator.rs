//! The two workload generation modes of the paper's simulator (§V).

use crate::trace::{Arrival, ArrivalTrace};
use mca_mobile::InterArrivalSampler;
use mca_offload::{TaskPool, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which of the simulator's operational modes to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GenerationMode {
    /// `users` emulated devices offload simultaneously in periodic bursts
    /// separated by `burst_interval_ms` (the paper uses 1-minute intervals to
    /// give the server cool-down time between bursts). Used to benchmark
    /// cloud instances.
    Concurrent {
        /// Number of devices offloading in each burst.
        users: usize,
        /// Interval between bursts, ms.
        burst_interval_ms: f64,
    },
    /// Every device issues requests independently with inter-arrival times
    /// drawn from `sampler`. Used to produce realistic time-varying workload.
    InterArrival {
        /// Number of active devices.
        users: usize,
        /// Inter-arrival distribution between a device's requests.
        sampler: InterArrivalSampler,
    },
}

/// Generates [`ArrivalTrace`]s according to a [`GenerationMode`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadGenerator {
    mode: GenerationMode,
    pool: TaskPool,
    /// Offset added to every generated user id (lets several generators
    /// produce disjoint user populations).
    user_id_offset: u32,
}

impl WorkloadGenerator {
    /// Creates a generator over the given task pool.
    pub fn new(mode: GenerationMode, pool: TaskPool) -> Self {
        Self {
            mode,
            pool,
            user_id_offset: 0,
        }
    }

    /// Convenience constructor for the paper's concurrent benchmarking mode
    /// (1-minute burst interval).
    pub fn concurrent(users: usize, pool: TaskPool) -> Self {
        Self::new(
            GenerationMode::Concurrent {
                users,
                burst_interval_ms: 60_000.0,
            },
            pool,
        )
    }

    /// Convenience constructor for the paper's inter-arrival mode with the
    /// usage-study calibration (100–5000 ms).
    pub fn inter_arrival(users: usize, pool: TaskPool) -> Self {
        Self::new(
            GenerationMode::InterArrival {
                users,
                sampler: InterArrivalSampler::paper_calibrated(),
            },
            pool,
        )
    }

    /// Offsets generated user ids by `offset`.
    pub fn with_user_id_offset(mut self, offset: u32) -> Self {
        self.user_id_offset = offset;
        self
    }

    /// The generation mode.
    pub fn mode(&self) -> GenerationMode {
        self.mode
    }

    /// The task pool requests are drawn from.
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// Generates the arrival trace for a workload that stays active for
    /// `duration_ms` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the mode specifies zero users or the duration is not
    /// positive.
    pub fn generate<R: Rng + ?Sized>(&self, duration_ms: f64, rng: &mut R) -> ArrivalTrace {
        assert!(duration_ms > 0.0, "duration must be positive");
        match self.mode {
            GenerationMode::Concurrent {
                users,
                burst_interval_ms,
            } => {
                assert!(users > 0, "concurrent mode needs at least one user");
                assert!(burst_interval_ms > 0.0, "burst interval must be positive");
                let mut arrivals = Vec::new();
                let mut t = 0.0;
                while t < duration_ms {
                    for u in 0..users {
                        // sub-millisecond jitter so simultaneous arrivals keep a
                        // deterministic yet distinct order
                        let jitter: f64 = rng.gen_range(0.0..1.0);
                        arrivals.push(Arrival {
                            time_ms: t + jitter,
                            user: UserId(self.user_id_offset + u as u32),
                            task: self.pool.draw(rng),
                        });
                    }
                    t += burst_interval_ms;
                }
                ArrivalTrace::new(arrivals)
            }
            GenerationMode::InterArrival { users, sampler } => {
                assert!(users > 0, "inter-arrival mode needs at least one user");
                let mut arrivals = Vec::new();
                for u in 0..users {
                    let mut t = sampler.sample_ms(rng) * rng.gen_range(0.0..1.0);
                    while t < duration_ms {
                        arrivals.push(Arrival {
                            time_ms: t,
                            user: UserId(self.user_id_offset + u as u32),
                            task: self.pool.draw(rng),
                        });
                        t += sampler.sample_ms(rng);
                    }
                }
                ArrivalTrace::new(arrivals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::TaskSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concurrent_mode_produces_bursts() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = WorkloadGenerator::concurrent(30, TaskPool::paper_default());
        let trace = gen.generate(3.0 * 60_000.0, &mut rng);
        // 3 bursts (t = 0, 60 000, 120 000) of 30 users each
        assert_eq!(trace.len(), 90);
        assert_eq!(trace.distinct_users(), 30);
        let per_minute = trace.arrivals_per_slot(60_000.0);
        assert!(per_minute.iter().all(|&c| c == 30), "{per_minute:?}");
    }

    #[test]
    fn inter_arrival_mode_respects_calibrated_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let users = 100;
        let gen = WorkloadGenerator::inter_arrival(users, TaskPool::paper_default());
        let duration = 10.0 * 60_000.0;
        let trace = gen.generate(duration, &mut rng);
        // each user issues a request roughly every min+mean = 1.3 s
        let expected = users as f64 * duration / 1_300.0;
        let ratio = trace.len() as f64 / expected;
        assert!(
            ratio > 0.8 && ratio < 1.2,
            "ratio {ratio} ({} arrivals)",
            trace.len()
        );
        assert_eq!(trace.distinct_users(), users);
    }

    #[test]
    fn eight_hour_hundred_user_experiment_magnitude() {
        // §VI-C-1: an 8-hour experiment with 100 users produced ≈4000 incoming
        // requests to the SDN-accelerator. The paper applies the usage-study
        // inter-arrival to the *population* of users (each user session is
        // sporadic); the equivalent configuration here is a single aggregate
        // arrival process with the calibrated sampler.
        let mut rng = StdRng::seed_from_u64(3);
        let gen = WorkloadGenerator::inter_arrival(1, TaskPool::paper_default());
        let trace = gen.generate(8.0 * 3_600_000.0, &mut rng);
        // one aggregate stream at ~1.3 s inter-arrival -> ≈22 000 requests;
        // scaled to the paper's 4 000 by the duty cycle of real users. Here we
        // only check the magnitude is stable and positive.
        assert!(
            trace.len() > 10_000 && trace.len() < 40_000,
            "{}",
            trace.len()
        );
    }

    #[test]
    fn static_pool_generates_only_minimax() {
        let mut rng = StdRng::seed_from_u64(4);
        let gen = WorkloadGenerator::inter_arrival(
            5,
            TaskPool::static_load(TaskSpec::paper_static_minimax()),
        );
        let trace = gen.generate(60_000.0, &mut rng);
        assert!(trace
            .iter()
            .all(|a| a.task == TaskSpec::paper_static_minimax()));
    }

    #[test]
    fn user_id_offset_separates_populations() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = WorkloadGenerator::inter_arrival(10, TaskPool::paper_default())
            .generate(30_000.0, &mut rng);
        let b = WorkloadGenerator::inter_arrival(10, TaskPool::paper_default())
            .with_user_id_offset(100)
            .generate(30_000.0, &mut rng);
        let max_a = a.iter().map(|x| x.user.0).max().unwrap();
        let min_b = b.iter().map(|x| x.user.0).min().unwrap();
        assert!(max_a < min_b);
    }

    #[test]
    fn arrivals_are_within_duration() {
        let mut rng = StdRng::seed_from_u64(6);
        let gen = WorkloadGenerator::inter_arrival(20, TaskPool::paper_default());
        let trace = gen.generate(120_000.0, &mut rng);
        assert!(trace
            .iter()
            .all(|a| a.time_ms >= 0.0 && a.time_ms < 120_000.0));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let gen = WorkloadGenerator::concurrent(0, TaskPool::paper_default());
        let _ = gen.generate(1_000.0, &mut rng);
    }
}
