//! Parameterized experiment schedules.
//!
//! Two schedules appear in the paper's evaluation:
//!
//! * the **arrival-rate doubling** scenario of §VI-B-3 / Fig. 8b: the
//!   inter-arrival rate of requests doubles every five minutes from 1 Hz to
//!   1024 Hz, which drives a single t2.large past its saturation point, and
//! * **ramp** scenarios that grow (or shrink) the active user population over
//!   consecutive provisioning slots — the "quickly growing load" situation
//!   discussed in §IV-B-2 that the predictor handles conservatively.

use serde::{Deserialize, Serialize};

/// One step of a rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStep {
    /// Offered arrival rate during the step, Hz.
    pub arrival_hz: f64,
    /// Time at which the step starts, ms.
    pub start_ms: f64,
    /// Duration of the step, ms.
    pub duration_ms: f64,
}

/// The Fig. 8b schedule: the arrival rate doubles every `step_duration_ms`
/// from `start_hz` until `end_hz` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoublingRateScenario {
    /// Rate of the first step, Hz.
    pub start_hz: f64,
    /// Rate of the last step, Hz (inclusive; must be `start_hz * 2^k`).
    pub end_hz: f64,
    /// Duration of each step, ms.
    pub step_duration_ms: f64,
}

impl DoublingRateScenario {
    /// The paper's configuration: 1 Hz → 1024 Hz, doubling every 5 minutes.
    pub fn paper_default() -> Self {
        Self {
            start_hz: 1.0,
            end_hz: 1024.0,
            step_duration_ms: 5.0 * 60_000.0,
        }
    }

    /// The schedule as explicit steps.
    pub fn steps(&self) -> Vec<RateStep> {
        let mut steps = Vec::new();
        let mut hz = self.start_hz;
        let mut start = 0.0;
        while hz <= self.end_hz * (1.0 + 1e-9) {
            steps.push(RateStep {
                arrival_hz: hz,
                start_ms: start,
                duration_ms: self.step_duration_ms,
            });
            start += self.step_duration_ms;
            hz *= 2.0;
        }
        steps
    }

    /// Total duration of the schedule, ms.
    pub fn total_duration_ms(&self) -> f64 {
        self.steps().len() as f64 * self.step_duration_ms
    }
}

/// A user-population ramp across provisioning slots: the number of active
/// users changes linearly from `start_users` to `end_users` over `slots`
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampScenario {
    /// Users in the first slot.
    pub start_users: usize,
    /// Users in the last slot.
    pub end_users: usize,
    /// Number of slots in the ramp.
    pub slots: usize,
}

impl RampScenario {
    /// Users active in slot `index` (0-based). Indices beyond the ramp hold
    /// the final value.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has zero slots.
    pub fn users_in_slot(&self, index: usize) -> usize {
        assert!(self.slots > 0, "ramp needs at least one slot");
        if self.slots == 1 || index + 1 >= self.slots {
            return self.end_users;
        }
        let t = index as f64 / (self.slots - 1) as f64;
        let users = self.start_users as f64 + t * (self.end_users as f64 - self.start_users as f64);
        users.round() as usize
    }

    /// The full per-slot user counts.
    pub fn per_slot(&self) -> Vec<usize> {
        (0..self.slots).map(|i| self.users_in_slot(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_has_eleven_steps() {
        let s = DoublingRateScenario::paper_default();
        let steps = s.steps();
        assert_eq!(steps.len(), 11); // 1,2,4,...,1024
        assert_eq!(steps[0].arrival_hz, 1.0);
        assert_eq!(steps[10].arrival_hz, 1024.0);
        assert_eq!(s.total_duration_ms(), 11.0 * 5.0 * 60_000.0);
    }

    #[test]
    fn steps_are_contiguous_and_doubling() {
        let steps = DoublingRateScenario::paper_default().steps();
        for pair in steps.windows(2) {
            assert_eq!(pair[1].arrival_hz, pair[0].arrival_hz * 2.0);
            assert!((pair[1].start_ms - (pair[0].start_ms + pair[0].duration_ms)).abs() < 1e-9);
        }
    }

    #[test]
    fn custom_schedule_respects_bounds() {
        let s = DoublingRateScenario {
            start_hz: 2.0,
            end_hz: 16.0,
            step_duration_ms: 1_000.0,
        };
        let rates: Vec<f64> = s.steps().iter().map(|x| x.arrival_hz).collect();
        assert_eq!(rates, vec![2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let ramp = RampScenario {
            start_users: 10,
            end_users: 100,
            slots: 10,
        };
        let users = ramp.per_slot();
        assert_eq!(users.len(), 10);
        assert_eq!(users[0], 10);
        assert_eq!(users[9], 100);
        assert!(users.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn ramp_handles_decreasing_and_degenerate_cases() {
        let down = RampScenario {
            start_users: 50,
            end_users: 20,
            slots: 4,
        };
        assert_eq!(down.per_slot(), vec![50, 40, 30, 20]);
        let single = RampScenario {
            start_users: 5,
            end_users: 9,
            slots: 1,
        };
        assert_eq!(single.per_slot(), vec![9]);
        // beyond the ramp the last value holds
        assert_eq!(down.users_in_slot(100), 20);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_ramp_panics() {
        let ramp = RampScenario {
            start_users: 1,
            end_users: 2,
            slots: 0,
        };
        let _ = ramp.users_in_slot(0);
    }
}
