//! # mca-workload — workload generation
//!
//! The paper's evaluation drives the system with a simulator that "creates
//! workload in two different operational modes, 1) concurrent and 2)
//! inter-arrival rate" (§V):
//!
//! * the **concurrent** mode spawns `n` simultaneous emulated devices and is
//!   used to benchmark the cloud instances (Fig. 4–7),
//! * the **inter-arrival** mode takes a number of devices, the inter-arrival
//!   time between offloading requests and an active duration, and is used to
//!   produce the realistic time-varying workload of the 8-hour and 16-hour
//!   experiments (Fig. 9–10) — with inter-arrival times derived from the
//!   3-month smartphone usage study (100–5000 ms, `mca-mobile`).
//!
//! This crate turns those modes into explicit arrival traces:
//!
//! * [`generator`] — the two generation modes, producing [`trace::ArrivalTrace`]s,
//! * [`scenario`] — parameterized experiment schedules such as the
//!   arrival-rate-doubling scenario of Fig. 8b (1 Hz → 1024 Hz, doubling every
//!   five minutes) and ramp scenarios used to evaluate the predictor,
//! * [`tenant`] — multi-tenant mixes: heterogeneous per-tenant load shapes
//!   (steady / ramp / doubling) with deterministic per-slot record
//!   generation, feeding the sharded fleet engine,
//! * [`trace`] — the arrival trace container with per-slot aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod scenario;
pub mod tenant;
pub mod trace;

pub use generator::{GenerationMode, WorkloadGenerator};
pub use scenario::{DoublingRateScenario, RampScenario, RateStep};
pub use tenant::{TenantMix, TenantScenario};
pub use trace::{Arrival, ArrivalTrace};
