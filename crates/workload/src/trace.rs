//! Arrival traces: the output of the workload generator.

use mca_offload::{TaskSpec, UserId};
use serde::{Deserialize, Serialize};

/// One offloading request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival time at the SDN-accelerator, simulation milliseconds.
    pub time_ms: f64,
    /// The device issuing the request.
    pub user: UserId,
    /// The task the device wants to offload.
    pub task: TaskSpec,
}

/// A chronologically ordered sequence of arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Creates a trace from arrivals, sorting them by time.
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("times are finite"));
        Self { arrivals }
    }

    /// The arrivals in chronological order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns `true` when the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Iterates over the arrivals.
    pub fn iter(&self) -> impl Iterator<Item = &Arrival> {
        self.arrivals.iter()
    }

    /// Duration spanned by the trace (first to last arrival), ms.
    pub fn span_ms(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(first), Some(last)) => last.time_ms - first.time_ms,
            _ => 0.0,
        }
    }

    /// Number of distinct users appearing in the trace.
    pub fn distinct_users(&self) -> usize {
        let mut users: Vec<u32> = self.arrivals.iter().map(|a| a.user.0).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }

    /// Mean offered arrival rate over the trace's span, in requests per
    /// second (0 for traces spanning no time).
    pub fn mean_rate_hz(&self) -> f64 {
        let span = self.span_ms();
        if span <= 0.0 {
            0.0
        } else {
            (self.arrivals.len() as f64 - 1.0).max(0.0) / span * 1_000.0
        }
    }

    /// Counts arrivals per consecutive time slot of `slot_ms` starting at 0.
    /// The returned vector covers every slot up to the last arrival.
    pub fn arrivals_per_slot(&self, slot_ms: f64) -> Vec<usize> {
        assert!(slot_ms > 0.0, "slot length must be positive");
        let Some(last) = self.arrivals.last() else {
            return Vec::new();
        };
        let slots = (last.time_ms / slot_ms).floor() as usize + 1;
        let mut counts = vec![0usize; slots];
        for a in &self.arrivals {
            let idx = (a.time_ms / slot_ms).floor() as usize;
            counts[idx.min(slots - 1)] += 1;
        }
        counts
    }

    /// Counts the distinct users that appear in each consecutive time slot.
    pub fn users_per_slot(&self, slot_ms: f64) -> Vec<usize> {
        assert!(slot_ms > 0.0, "slot length must be positive");
        let Some(last) = self.arrivals.last() else {
            return Vec::new();
        };
        let slots = (last.time_ms / slot_ms).floor() as usize + 1;
        let mut per_slot: Vec<Vec<u32>> = vec![Vec::new(); slots];
        for a in &self.arrivals {
            let idx = ((a.time_ms / slot_ms).floor() as usize).min(slots - 1);
            per_slot[idx].push(a.user.0);
        }
        per_slot
            .into_iter()
            .map(|mut users| {
                users.sort_unstable();
                users.dedup();
                users.len()
            })
            .collect()
    }

    /// Merges another trace into this one, keeping chronological order.
    ///
    /// Both traces are already sorted (every constructor sorts), so a single
    /// linear two-way merge suffices — `O(n + m)` instead of the
    /// `O((n + m) log(n + m))` re-sort of the full concatenation. Ties keep
    /// this trace's arrivals before `other`'s, exactly as the previous
    /// concatenate-and-stable-sort did.
    pub fn merge(&mut self, other: ArrivalTrace) {
        if other.arrivals.is_empty() {
            return;
        }
        if self.arrivals.is_empty() {
            self.arrivals = other.arrivals;
            return;
        }
        let left = std::mem::take(&mut self.arrivals);
        let mut merged = Vec::with_capacity(left.len() + other.arrivals.len());
        let mut a = left.into_iter().peekable();
        let mut b = other.arrivals.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.time_ms <= y.time_ms {
                        merged.push(a.next().expect("peeked"));
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => {
                    merged.extend(a);
                    break;
                }
                (None, _) => {
                    merged.extend(b);
                    break;
                }
            }
        }
        self.arrivals = merged;
    }
}

impl FromIterator<Arrival> for ArrivalTrace {
    fn from_iter<I: IntoIterator<Item = Arrival>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Arrival> for ArrivalTrace {
    fn extend<I: IntoIterator<Item = Arrival>>(&mut self, iter: I) {
        self.arrivals.extend(iter);
        self.arrivals
            .sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("times are finite"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::TaskKind;

    fn arrival(t: f64, user: u32) -> Arrival {
        Arrival {
            time_ms: t,
            user: UserId(user),
            task: TaskSpec::new(TaskKind::Minimax, 7),
        }
    }

    #[test]
    fn new_sorts_by_time() {
        let trace = ArrivalTrace::new(vec![arrival(30.0, 1), arrival(10.0, 2), arrival(20.0, 1)]);
        let times: Vec<f64> = trace.iter().map(|a| a.time_ms).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.distinct_users(), 2);
        assert_eq!(trace.span_ms(), 20.0);
    }

    #[test]
    fn empty_trace_defaults() {
        let trace = ArrivalTrace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.span_ms(), 0.0);
        assert_eq!(trace.mean_rate_hz(), 0.0);
        assert!(trace.arrivals_per_slot(1000.0).is_empty());
    }

    #[test]
    fn mean_rate_is_requests_per_second() {
        // 11 arrivals over 10 seconds -> 1 Hz
        let trace: ArrivalTrace = (0..11).map(|i| arrival(i as f64 * 1_000.0, i)).collect();
        assert!((trace.mean_rate_hz() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_per_slot_counts_each_request_once() {
        let trace = ArrivalTrace::new(vec![
            arrival(100.0, 1),
            arrival(900.0, 2),
            arrival(1_500.0, 1),
            arrival(2_999.0, 3),
        ]);
        let counts = trace.arrivals_per_slot(1_000.0);
        assert_eq!(counts, vec![2, 1, 1]);
        assert_eq!(counts.iter().sum::<usize>(), trace.len());
    }

    #[test]
    fn users_per_slot_deduplicates_users() {
        let trace = ArrivalTrace::new(vec![
            arrival(100.0, 1),
            arrival(200.0, 1),
            arrival(300.0, 2),
            arrival(1_100.0, 1),
        ]);
        assert_eq!(trace.users_per_slot(1_000.0), vec![2, 1]);
    }

    #[test]
    fn merge_preserves_order() {
        let mut a = ArrivalTrace::new(vec![arrival(10.0, 1), arrival(30.0, 1)]);
        let b = ArrivalTrace::new(vec![arrival(20.0, 2)]);
        a.merge(b);
        let times: Vec<f64> = a.iter().map(|x| x.time_ms).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn merge_with_empty_traces_is_identity() {
        let mut a = ArrivalTrace::new(vec![arrival(10.0, 1)]);
        a.merge(ArrivalTrace::default());
        assert_eq!(a.len(), 1);
        let mut empty = ArrivalTrace::default();
        empty.merge(a.clone());
        assert_eq!(empty, a);
    }

    #[test]
    fn merge_ties_keep_self_before_other() {
        // the stable-sort behaviour the linear merge must reproduce: on equal
        // timestamps, self's arrivals come first, each side in its own order
        let mut a = ArrivalTrace::new(vec![arrival(10.0, 1), arrival(10.0, 2)]);
        let b = ArrivalTrace::new(vec![arrival(10.0, 3), arrival(10.0, 4)]);
        a.merge(b);
        let users: Vec<u32> = a.iter().map(|x| x.user.0).collect();
        assert_eq!(users, vec![1, 2, 3, 4]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The linear merge is bit-identical to the previous implementation
        /// (concatenate, then stable-sort by time) on arbitrary trace pairs —
        /// timestamps drawn from a tiny range so ties are common.
        #[test]
        fn linear_merge_equals_concat_and_stable_sort(
            left in proptest::collection::vec((0u32..40, 0u32..8), 0..32),
            right in proptest::collection::vec((0u32..40, 0u32..8), 0..32),
        ) {
            let build = |pairs: &[(u32, u32)]| {
                ArrivalTrace::new(
                    pairs
                        .iter()
                        .map(|&(t, u)| arrival(f64::from(t) * 0.5, u))
                        .collect(),
                )
            };
            let mut merged = build(&left);
            merged.merge(build(&right));

            // the old behaviour, reproduced verbatim as the reference
            let mut reference: Vec<Arrival> = build(&left)
                .iter()
                .chain(build(&right).iter())
                .copied()
                .collect();
            reference
                .sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).expect("times are finite"));
            proptest::prop_assert_eq!(merged.arrivals(), reference.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_panics() {
        let trace = ArrivalTrace::new(vec![arrival(1.0, 1)]);
        let _ = trace.arrivals_per_slot(0.0);
    }
}
