//! Multi-tenant workload mixes.
//!
//! The paper models a single operator; a production-scale deployment serves
//! many tenants at once, each with its own user population and its own load
//! shape. A [`TenantMix`] assigns one of three generator modes to every
//! tenant — a **steady** subscriber base, a linear **ramp** (up or down,
//! [`RampScenario`]) and a **doubling** load in the spirit of the Fig. 8b
//! arrival-rate-doubling schedule — and produces each tenant's per-slot
//! `(group, user)` assignments deterministically.
//!
//! Determinism is the load-bearing property: churn is drawn from a
//! caller-owned **per-tenant RNG stream** (canonically derived with
//! [`TenantMix::stream_for`]), so the records of tenant `t` are a pure
//! function of the mix seed and that tenant's own slot sequence — never of
//! the order *other* tenants are generated in. The sharded fleet engine
//! (`mca-fleet`) keeps one stream per tenant shard and relies on this to
//! produce bit-identical per-tenant forecasts no matter how tenants are
//! partitioned across shards or threads.

use crate::scenario::RampScenario;
use mca_offload::{AccelerationGroupId, TenantId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stride of the per-tenant user-id space: tenant `t` owns ids
/// `[t * STRIDE, (t + 1) * STRIDE)`, so tenant populations never collide.
/// The 32-bit user-id space therefore holds [`MAX_TENANTS`] tenants.
const USER_ID_STRIDE: u32 = 1 << 20;

/// Maximum tenants a mix can hold before tenant id ranges would wrap the
/// 32-bit user-id space.
pub const MAX_TENANTS: usize = (u32::MAX / USER_ID_STRIDE) as usize; // 4095

/// The load shape assigned to one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TenantScenario {
    /// A stable subscriber base: the same users every slot.
    Steady {
        /// Active users per slot.
        users: usize,
    },
    /// A linearly growing or shrinking population whose user-id window also
    /// drifts over time (churn: old users leave, new users join).
    Ramp(RampScenario),
    /// The population doubles every `slots_per_step` slots, from
    /// `start_users` up to `start_users << doublings`, then holds — the
    /// slot-level analogue of the arrival-rate-doubling schedule of Fig. 8b.
    Doubling {
        /// Users in the first step.
        start_users: usize,
        /// Number of doublings before the load plateaus.
        doublings: u32,
        /// Slots per step.
        slots_per_step: usize,
    },
}

impl TenantScenario {
    /// Number of active users in slot `index`.
    pub fn users_in_slot(&self, index: usize) -> usize {
        match *self {
            TenantScenario::Steady { users } => users,
            TenantScenario::Ramp(ramp) => ramp.users_in_slot(index),
            TenantScenario::Doubling {
                start_users,
                doublings,
                slots_per_step,
            } => {
                let step = (index / slots_per_step.max(1)).min(doublings as usize) as u32;
                start_users << step
            }
        }
    }
}

/// A heterogeneous population of tenants, each with its own [`TenantScenario`]
/// and a disjoint user-id range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMix {
    seed: u64,
    groups: Vec<AccelerationGroupId>,
    scenarios: Vec<TenantScenario>,
}

impl TenantMix {
    /// Creates a mix from explicit per-tenant scenarios.
    ///
    /// # Panics
    ///
    /// Panics if the mix exceeds [`MAX_TENANTS`] tenants (the 32-bit
    /// user-id space would wrap and tenant populations would collide).
    pub fn new(
        seed: u64,
        groups: Vec<AccelerationGroupId>,
        scenarios: Vec<TenantScenario>,
    ) -> Self {
        assert!(
            scenarios.len() <= MAX_TENANTS,
            "a mix holds at most {MAX_TENANTS} tenants"
        );
        Self {
            seed,
            groups,
            scenarios,
        }
    }

    /// A heterogeneous mix of `tenants` tenants over `groups`, cycling
    /// through steady / ramp-up / ramp-down / doubling shapes with
    /// seed-dependent magnitudes around `nominal_users`.
    pub fn heterogeneous(
        tenants: usize,
        nominal_users: usize,
        groups: Vec<AccelerationGroupId>,
        seed: u64,
    ) -> Self {
        assert!(tenants > 0, "a mix needs at least one tenant");
        assert!(nominal_users > 0, "tenants need at least one user");
        let scenarios = (0..tenants)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let users = nominal_users.max(2);
                let jitter = rng.gen_range(0..users / 2 + 1);
                match t % 4 {
                    0 => TenantScenario::Steady {
                        users: users / 2 + jitter,
                    },
                    1 => TenantScenario::Ramp(RampScenario {
                        start_users: (users / 4).max(1),
                        end_users: users + jitter,
                        slots: rng.gen_range(16..64usize),
                    }),
                    2 => TenantScenario::Ramp(RampScenario {
                        start_users: users + jitter,
                        end_users: (users / 4).max(1),
                        slots: rng.gen_range(16..64usize),
                    }),
                    _ => TenantScenario::Doubling {
                        start_users: (users / 8).max(1),
                        doublings: 3,
                        slots_per_step: rng.gen_range(4..16usize),
                    },
                }
            })
            .collect();
        Self::new(seed, groups, scenarios)
    }

    /// A heavy-tailed mix: tenant `t` carries a Zipf-sized population
    /// `max_users / (t + 1)^s` (rounded, floored at one user), so tenant 0
    /// dominates and the tail thins by the skew exponent `s` — the realistic
    /// skewed-tenant regime the elastic rebalancer is benchmarked against.
    /// Every tenant runs a flat [`TenantScenario::Ramp`] (constant
    /// population on the churn/drift path), so populations stay fixed in
    /// size while ~2 % of each tenant's users churn per slot from the
    /// tenant's own deterministic stream.
    pub fn zipf(
        tenants: usize,
        max_users: usize,
        s: f64,
        groups: Vec<AccelerationGroupId>,
        seed: u64,
    ) -> Self {
        assert!(tenants > 0, "a mix needs at least one tenant");
        assert!(max_users > 0, "the heaviest tenant needs at least one user");
        let scenarios = (0..tenants)
            .map(|t| {
                let users = ((max_users as f64) / ((t + 1) as f64).powf(s))
                    .round()
                    .max(1.0) as usize;
                // a flat ramp keeps the population constant but on the
                // churn/drift generation path, unlike Steady
                TenantScenario::Ramp(RampScenario {
                    start_users: users,
                    end_users: users,
                    slots: 1,
                })
            })
            .collect();
        Self::new(seed, groups, scenarios)
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.scenarios.len()
    }

    /// The tenant ids of the mix, in increasing order.
    pub fn tenant_ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        (0..self.scenarios.len() as u32).map(TenantId)
    }

    /// The acceleration groups tenant users are assigned to.
    pub fn groups(&self) -> &[AccelerationGroupId] {
        &self.groups
    }

    /// The scenario assigned to `tenant`.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not part of the mix.
    pub fn scenario_of(&self, tenant: TenantId) -> &TenantScenario {
        &self.scenarios[tenant.0 as usize]
    }

    /// Number of active users of `tenant` in slot `slot`.
    pub fn users_in_slot(&self, tenant: TenantId, slot: usize) -> usize {
        self.scenario_of(tenant).users_in_slot(slot)
    }

    /// The canonical RNG stream of `tenant`: feed it to
    /// [`TenantMix::slot_records`] for that tenant's slots **in slot order**
    /// to reproduce the tenant's workload exactly. Each tenant's stream is
    /// independent, so tenants can be generated on different shards or
    /// threads without perturbing each other.
    pub fn stream_for(&self, tenant: TenantId) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (u64::from(tenant.0).wrapping_mul(0xBF58_476D_1CE4_E5B9)))
    }

    /// The `(group, user)` assignments of `tenant` in slot `slot`, drawing
    /// churn from the tenant's own stream (see [`TenantMix::stream_for`]).
    ///
    /// Users are spread over the mix's groups in a fixed 60/25/15-style
    /// split (earlier groups take the larger shares; with fewer groups the
    /// remainder folds into the last one). Steady tenants keep the same user
    /// ids every slot and never touch the stream; ramp and doubling tenants
    /// drift their id window and churn ~2 % of ids per slot, so consecutive
    /// slots share most users — the regime the predictor's edit distance is
    /// designed for.
    pub fn slot_records<R: Rng + ?Sized>(
        &self,
        tenant: TenantId,
        slot: usize,
        rng: &mut R,
    ) -> Vec<(AccelerationGroupId, UserId)> {
        let scenario = self.scenario_of(tenant);
        let users = scenario.users_in_slot(slot);
        let base = tenant.0 * USER_ID_STRIDE;
        let mut records = Vec::with_capacity(users);
        let (drift, churn) = match scenario {
            TenantScenario::Steady { .. } => (0, false),
            // ~2% of the window per slot, like real subscriber churn; the
            // drift wraps at half the id stride so very long runs stay
            // inside the tenant's id range
            _ => (
                ((slot * (users / 50).max(1)) % (USER_ID_STRIDE / 2) as usize) as u32,
                true,
            ),
        };
        for u in 0..users as u32 {
            let id = if churn && rng.gen_bool(0.02) {
                base + drift + users as u32 + rng.gen_range(1u32..50)
            } else {
                base + drift + u
            };
            let group = self.group_of(u as usize, users);
            records.push((group, UserId(id)));
        }
        records
    }

    /// The group user index `u` of `users` falls into under the fixed split.
    fn group_of(&self, u: usize, users: usize) -> AccelerationGroupId {
        debug_assert!(!self.groups.is_empty(), "a mix needs at least one group");
        // cumulative shares of the 60/25/15 split, scaled to the user count
        let first = (users * 60).div_ceil(100);
        let second = first + (users * 25) / 100;
        let position = match self.groups.len() {
            1 => 0,
            2 => usize::from(u >= first),
            _ => {
                if u < first {
                    0
                } else if u < second {
                    1
                } else {
                    2.min(self.groups.len() - 1)
                }
            }
        };
        self.groups[position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GROUPS: [AccelerationGroupId; 3] = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];

    fn mix(tenants: usize, seed: u64) -> TenantMix {
        TenantMix::heterogeneous(tenants, 24, GROUPS.to_vec(), seed)
    }

    #[test]
    fn heterogeneous_mix_cycles_the_three_shapes() {
        let m = mix(8, 11);
        assert_eq!(m.tenants(), 8);
        assert!(matches!(
            m.scenario_of(TenantId(0)),
            TenantScenario::Steady { .. }
        ));
        assert!(matches!(
            m.scenario_of(TenantId(1)),
            TenantScenario::Ramp(_)
        ));
        assert!(matches!(
            m.scenario_of(TenantId(3)),
            TenantScenario::Doubling { .. }
        ));
        assert_eq!(m.tenant_ids().count(), 8);
    }

    /// Replays `slots` slots of one tenant from its canonical stream.
    fn replay(
        m: &TenantMix,
        tenant: TenantId,
        slots: usize,
    ) -> Vec<Vec<(AccelerationGroupId, UserId)>> {
        let mut rng = m.stream_for(tenant);
        (0..slots)
            .map(|s| m.slot_records(tenant, s, &mut rng))
            .collect()
    }

    #[test]
    fn slot_records_are_deterministic_per_seed_and_tenant_stream() {
        let a = mix(6, 42);
        let b = mix(6, 42);
        for t in a.tenant_ids() {
            assert_eq!(replay(&a, t, 32), replay(&b, t, 32));
        }
        // a different seed changes the scenarios or the records
        let c = mix(6, 43);
        assert_ne!(replay(&a, TenantId(1), 32), replay(&c, TenantId(1), 32));
    }

    #[test]
    fn tenant_streams_are_independent_of_each_other() {
        let m = mix(6, 42);
        // generating tenant 1 alone produces the same records as generating
        // it interleaved with every other tenant
        let alone = replay(&m, TenantId(1), 16);
        let mut streams: Vec<_> = m.tenant_ids().map(|t| m.stream_for(t)).collect();
        let mut interleaved = Vec::new();
        for slot in 0..16 {
            for t in m.tenant_ids() {
                let records = m.slot_records(t, slot, &mut streams[t.0 as usize]);
                if t == TenantId(1) {
                    interleaved.push(records);
                }
            }
        }
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn steady_tenants_repeat_the_same_population() {
        let m = mix(4, 9);
        let slots = replay(&m, TenantId(0), 64);
        assert_eq!(slots.first(), slots.last());
        assert!(!slots[0].is_empty());
    }

    #[test]
    fn doubling_tenants_double_then_plateau() {
        let scenario = TenantScenario::Doubling {
            start_users: 3,
            doublings: 2,
            slots_per_step: 4,
        };
        assert_eq!(scenario.users_in_slot(0), 3);
        assert_eq!(scenario.users_in_slot(4), 6);
        assert_eq!(scenario.users_in_slot(8), 12);
        assert_eq!(scenario.users_in_slot(100), 12, "plateaus after doublings");
    }

    #[test]
    fn tenant_user_populations_are_disjoint() {
        let m = mix(5, 3);
        let of = |t: u32| -> Vec<u32> {
            replay(&m, TenantId(t), 3)
                .concat()
                .iter()
                .map(|(_, u)| u.0)
                .collect()
        };
        for t in 0..4u32 {
            let max_t = of(t).into_iter().max().unwrap();
            let min_next = of(t + 1).into_iter().min().unwrap();
            assert!(max_t < min_next, "tenant {t} overlaps tenant {}", t + 1);
        }
    }

    #[test]
    fn records_follow_the_scenario_count_and_cover_groups() {
        let m = mix(4, 17);
        for t in m.tenant_ids() {
            for (slot, records) in replay(&m, t, 41).iter().enumerate() {
                assert_eq!(records.len(), m.users_in_slot(t, slot));
                // the 60% share always populates the first group
                assert!(records.iter().any(|(g, _)| *g == GROUPS[0]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenant_mix_panics() {
        let _ = TenantMix::heterogeneous(0, 10, GROUPS.to_vec(), 1);
    }

    #[test]
    fn zipf_mix_sizes_follow_the_power_law() {
        let m = TenantMix::zipf(8, 800, 1.0, GROUPS.to_vec(), 5);
        let users: Vec<usize> = (0..8).map(|t| m.users_in_slot(TenantId(t), 0)).collect();
        assert_eq!(users[0], 800, "tenant 0 carries the full max");
        assert_eq!(users[1], 400);
        assert_eq!(users[3], 200);
        assert!(users.windows(2).all(|w| w[0] >= w[1]), "monotone tail");
        assert!(users.iter().all(|&u| u >= 1), "no empty tenants");
        // the population stays constant across slots (flat ramp)
        assert_eq!(m.users_in_slot(TenantId(0), 100), 800);
    }

    #[test]
    fn zipf_mix_replays_deterministically_with_per_slot_churn() {
        let a = TenantMix::zipf(6, 200, 0.8, GROUPS.to_vec(), 7);
        let b = TenantMix::zipf(6, 200, 0.8, GROUPS.to_vec(), 7);
        for t in a.tenant_ids() {
            assert_eq!(replay(&a, t, 24), replay(&b, t, 24));
        }
        // churn and drift make consecutive slots overlap without matching
        let slots = replay(&a, TenantId(0), 4);
        assert_ne!(slots[0], slots[1], "the id window drifts between slots");
        assert_eq!(slots[0].len(), slots[1].len(), "sizes stay Zipf-fixed");
    }
}
