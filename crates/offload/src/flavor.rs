//! The three offloading implementation models of §II-A.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Implementation flavour of code offloading (Fig. 1 of the paper).
///
/// The paper's system uses the **homogeneous** model: mobile and cloud share
/// the same runtime environment and the same task code, so the mobile
/// serializes its application state, the surrogate reconstructs it and
/// executes the exact same method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OffloadingModel {
    /// Same runtime environment and task code on both sides; application
    /// state is transferred and reconstructed in the cloud. The device can
    /// compute the task locally when disconnected. (Used by this system.)
    #[default]
    Homogeneous,
    /// Different runtime environments; the mobile has a simpler task
    /// implementation and only input parameters travel over the network.
    /// Local results are less accurate than cloud results.
    Heterogeneous,
    /// The task code exists only in the cloud; the mobile merely invokes it
    /// and cannot provide the functionality offline.
    Neutral,
}

impl OffloadingModel {
    /// Whether the mobile application can still provide the functionality
    /// with no network connectivity.
    pub fn supports_offline_execution(self) -> bool {
        match self {
            OffloadingModel::Homogeneous | OffloadingModel::Heterogeneous => true,
            OffloadingModel::Neutral => false,
        }
    }

    /// Whether the local (on-device) execution produces a result of the same
    /// accuracy as the cloud execution.
    pub fn local_result_is_equivalent(self) -> bool {
        matches!(self, OffloadingModel::Homogeneous)
    }

    /// Whether full application state (rather than only input parameters)
    /// must be transferred when offloading.
    pub fn transfers_application_state(self) -> bool {
        matches!(self, OffloadingModel::Homogeneous)
    }

    /// Whether the same runtime environment must exist on the mobile and the
    /// server (the reason the paper builds a Dalvik-x86 surrogate).
    pub fn requires_matching_runtime(self) -> bool {
        matches!(self, OffloadingModel::Homogeneous)
    }
}

impl fmt::Display for OffloadingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OffloadingModel::Homogeneous => "homogeneous",
            OffloadingModel::Heterogeneous => "heterogeneous",
            OffloadingModel::Neutral => "neutral",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_homogeneous() {
        assert_eq!(OffloadingModel::default(), OffloadingModel::Homogeneous);
    }

    #[test]
    fn offline_support_matrix() {
        assert!(OffloadingModel::Homogeneous.supports_offline_execution());
        assert!(OffloadingModel::Heterogeneous.supports_offline_execution());
        assert!(!OffloadingModel::Neutral.supports_offline_execution());
    }

    #[test]
    fn only_homogeneous_transfers_state_and_needs_matching_runtime() {
        assert!(OffloadingModel::Homogeneous.transfers_application_state());
        assert!(!OffloadingModel::Heterogeneous.transfers_application_state());
        assert!(!OffloadingModel::Neutral.transfers_application_state());
        assert!(OffloadingModel::Homogeneous.requires_matching_runtime());
        assert!(!OffloadingModel::Neutral.requires_matching_runtime());
    }

    #[test]
    fn heterogeneous_local_result_is_degraded() {
        assert!(OffloadingModel::Homogeneous.local_result_is_equivalent());
        assert!(!OffloadingModel::Heterogeneous.local_result_is_equivalent());
    }

    #[test]
    fn display_names() {
        assert_eq!(OffloadingModel::Homogeneous.to_string(), "homogeneous");
        assert_eq!(OffloadingModel::Neutral.to_string(), "neutral");
    }
}
