//! Method-level execution-time profiling.
//!
//! The paper's client-side moderator "monitors the execution time of the code
//! in the application, and promotes the execution of code to a higher level of
//! acceleration when it detects that the response time of the application
//! starts to degrade" (§I). The paper's implementation instruments client code
//! at method level using Java reflection (§V); this module is the equivalent
//! instrumentation layer: it records per-method response-time samples and
//! exposes the moving statistics the moderator's policies consume.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Rolling statistics for one instrumented method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodProfile {
    /// Method identifier (e.g. `"minimax"`).
    pub method: String,
    /// All recorded samples in milliseconds, oldest first, bounded by the
    /// profiler's window size.
    samples: Vec<f64>,
    /// Total number of samples ever recorded (including evicted ones).
    pub total_samples: u64,
    window: usize,
}

impl MethodProfile {
    fn new(method: String, window: usize) -> Self {
        Self {
            method,
            samples: Vec::new(),
            total_samples: 0,
            window,
        }
    }

    fn record(&mut self, sample_ms: f64) {
        self.total_samples += 1;
        self.samples.push(sample_ms);
        if self.samples.len() > self.window {
            let excess = self.samples.len() - self.window;
            self.samples.drain(0..excess);
        }
    }

    /// Samples currently in the window, oldest first.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean response time over the window, ms.
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation over the window, ms.
    pub fn std_dev_ms(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_ms();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// The most recent sample, ms (0 when empty).
    pub fn last_ms(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Degradation ratio of the recent half of the window versus the older
    /// half. A value above 1 means response times are getting longer — the
    /// trigger condition for promotion in the paper.
    pub fn degradation_ratio(&self) -> f64 {
        if self.samples.len() < 4 {
            return 1.0;
        }
        let mid = self.samples.len() / 2;
        let older = &self.samples[..mid];
        let recent = &self.samples[mid..];
        let older_mean = older.iter().sum::<f64>() / older.len() as f64;
        let recent_mean = recent.iter().sum::<f64>() / recent.len() as f64;
        if older_mean <= f64::EPSILON {
            return 1.0;
        }
        recent_mean / older_mean
    }
}

/// Records response-time samples per method and exposes rolling statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    window: usize,
    profiles: HashMap<String, MethodProfile>,
}

impl Profiler {
    /// Creates a profiler that keeps the most recent `window` samples per
    /// method (the default used by the moderator is 20).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "profiler window must be positive");
        Self {
            window,
            profiles: HashMap::new(),
        }
    }

    /// Records one response-time observation for `method`.
    pub fn record(&mut self, method: &str, sample_ms: f64) {
        self.profiles
            .entry(method.to_string())
            .or_insert_with(|| MethodProfile::new(method.to_string(), self.window))
            .record(sample_ms);
    }

    /// Profile for `method`, if any samples exist.
    pub fn profile(&self, method: &str) -> Option<&MethodProfile> {
        self.profiles.get(method)
    }

    /// Iterates over all method profiles in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &MethodProfile> {
        self.profiles.values()
    }

    /// Number of instrumented methods.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` when no method has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Mean response time across every method's window, ms.
    pub fn overall_mean_ms(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for p in self.profiles.values() {
            total += p.samples().iter().sum::<f64>();
            count += p.samples().len();
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut p = Profiler::new(10);
        for v in [100.0, 200.0, 300.0] {
            p.record("minimax", v);
        }
        let profile = p.profile("minimax").unwrap();
        assert_eq!(profile.mean_ms(), 200.0);
        assert_eq!(profile.last_ms(), 300.0);
        assert_eq!(profile.total_samples, 3);
        assert!(p.profile("unknown").is_none());
    }

    #[test]
    fn window_evicts_old_samples() {
        let mut p = Profiler::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            p.record("m", v);
        }
        let profile = p.profile("m").unwrap();
        assert_eq!(profile.samples(), &[3.0, 4.0, 5.0]);
        assert_eq!(profile.total_samples, 5);
    }

    #[test]
    fn degradation_ratio_detects_slowdown() {
        let mut p = Profiler::new(8);
        for v in [100.0, 100.0, 100.0, 100.0, 300.0, 300.0, 300.0, 300.0] {
            p.record("m", v);
        }
        let ratio = p.profile("m").unwrap().degradation_ratio();
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_ratio_neutral_for_stable_times() {
        let mut p = Profiler::new(8);
        for _ in 0..8 {
            p.record("m", 250.0);
        }
        assert!((p.profile("m").unwrap().degradation_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_ratio_needs_enough_samples() {
        let mut p = Profiler::new(8);
        p.record("m", 1.0);
        p.record("m", 100.0);
        assert_eq!(p.profile("m").unwrap().degradation_ratio(), 1.0);
    }

    #[test]
    fn std_dev_zero_for_constant() {
        let mut p = Profiler::new(8);
        for _ in 0..5 {
            p.record("m", 42.0);
        }
        assert_eq!(p.profile("m").unwrap().std_dev_ms(), 0.0);
    }

    #[test]
    fn overall_mean_spans_methods() {
        let mut p = Profiler::new(8);
        p.record("a", 100.0);
        p.record("b", 300.0);
        assert_eq!(p.overall_mean_ms(), 200.0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = Profiler::new(0);
    }
}
