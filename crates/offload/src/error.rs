//! Error type for the offloading runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the offloading runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffloadError {
    /// The serialized application state could not be decoded.
    CorruptState {
        /// Reason reported by the decoder.
        reason: String,
    },
    /// A task specification was invalid (e.g. zero-sized input where a
    /// positive size is required).
    InvalidTask {
        /// Reason the specification was rejected.
        reason: String,
    },
    /// An offloading request referenced an unknown task in the pool.
    UnknownTask {
        /// Index requested from the pool.
        index: usize,
        /// Size of the pool.
        pool_size: usize,
    },
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::CorruptState { reason } => {
                write!(f, "corrupt application state: {reason}")
            }
            OffloadError::InvalidTask { reason } => write!(f, "invalid task: {reason}"),
            OffloadError::UnknownTask { index, pool_size } => {
                write!(f, "task index {index} out of range for pool of {pool_size}")
            }
        }
    }
}

impl Error for OffloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OffloadError::CorruptState {
            reason: "bad length".into()
        }
        .to_string()
        .contains("bad length"));
        assert!(OffloadError::UnknownTask {
            index: 12,
            pool_size: 10
        }
        .to_string()
        .contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<OffloadError>();
    }
}
