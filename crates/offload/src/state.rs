//! Application-state encapsulation for the homogeneous offloading model.
//!
//! Under the homogeneous model (§II-A) the mobile encapsulates the
//! application state `AS` required by the offloaded method, transfers it over
//! the network, and the cloud surrogate reconstructs it before executing the
//! task. This module provides that encapsulation: a compact, versioned binary
//! envelope around the task specification and the method's captured state.

use crate::error::OffloadError;
use crate::task::TaskSpec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Magic bytes identifying a serialized application state envelope.
const MAGIC: &[u8; 4] = b"MCAS";
/// Current envelope format version.
const VERSION: u8 = 1;

/// The application state transferred when a method is offloaded.
///
/// Contains the task specification, the captured method state (opaque bytes
/// whose size follows [`TaskSpec::state_bytes`]), and the id of the APK the
/// surrogate must load to execute the method.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationState {
    /// The task (method) to execute remotely.
    pub task: TaskSpec,
    /// Identifier of the application package providing the method.
    pub apk_id: u32,
    /// Captured heap/stack state needed to reconstruct the method invocation.
    pub captured: Bytes,
}

impl ApplicationState {
    /// Captures the application state for a task, synthesizing the captured
    /// byte payload deterministically from the task specification.
    pub fn capture(task: TaskSpec, apk_id: u32) -> Self {
        let len = task.state_bytes();
        let mut captured = BytesMut::with_capacity(len);
        let mut seed = (u64::from(apk_id) << 32) ^ u64::from(task.input_size);
        for _ in 0..len {
            // cheap deterministic filler representing serialized heap state
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            captured.put_u8((seed >> 56) as u8);
        }
        Self {
            task,
            apk_id,
            captured: captured.freeze(),
        }
    }

    /// Total size of the envelope on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        // magic + version + apk + kind byte + input size + captured length + captured
        4 + 1 + 4 + 1 + 4 + 4 + self.captured.len()
    }

    /// Serializes the state into the binary envelope sent over the network.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.apk_id);
        buf.put_u8(task_kind_code(self.task));
        buf.put_u32(self.task.input_size);
        buf.put_u32(self.captured.len() as u32);
        buf.put_slice(&self.captured);
        buf.freeze()
    }

    /// Reconstructs the application state from a binary envelope.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::CorruptState`] if the envelope is truncated,
    /// has the wrong magic/version, or declares an inconsistent length.
    pub fn decode(mut data: Bytes) -> Result<Self, OffloadError> {
        if data.len() < 18 {
            return Err(OffloadError::CorruptState {
                reason: "envelope too short".into(),
            });
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(OffloadError::CorruptState {
                reason: "bad magic".into(),
            });
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(OffloadError::CorruptState {
                reason: format!("unsupported version {version}"),
            });
        }
        let apk_id = data.get_u32();
        let kind = task_kind_from_code(data.get_u8())?;
        let input_size = data.get_u32();
        let len = data.get_u32() as usize;
        if data.remaining() != len {
            return Err(OffloadError::CorruptState {
                reason: format!(
                    "captured length mismatch: declared {len}, got {}",
                    data.remaining()
                ),
            });
        }
        Ok(Self {
            task: TaskSpec::new(kind, input_size),
            apk_id,
            captured: data,
        })
    }
}

fn task_kind_code(task: TaskSpec) -> u8 {
    crate::task::TaskKind::ALL
        .iter()
        .position(|&k| k == task.kind)
        .expect("every kind is in ALL") as u8
}

fn task_kind_from_code(code: u8) -> Result<crate::task::TaskKind, OffloadError> {
    crate::task::TaskKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| OffloadError::CorruptState {
            reason: format!("unknown task code {code}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    #[test]
    fn round_trip() {
        let state = ApplicationState::capture(TaskSpec::new(TaskKind::Minimax, 9), 42);
        let encoded = state.encode();
        assert_eq!(encoded.len(), state.wire_size());
        let decoded = ApplicationState::decode(encoded).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn captured_size_follows_task_model() {
        let t = TaskSpec::new(TaskKind::QuickSort, 1000);
        let state = ApplicationState::capture(t, 1);
        assert_eq!(state.captured.len(), t.state_bytes());
    }

    #[test]
    fn capture_is_deterministic() {
        let a = ApplicationState::capture(TaskSpec::new(TaskKind::NQueens, 8), 7);
        let b = ApplicationState::capture(TaskSpec::new(TaskKind::NQueens, 8), 7);
        assert_eq!(a, b);
        let c = ApplicationState::capture(TaskSpec::new(TaskKind::NQueens, 8), 8);
        assert_ne!(
            a.captured, c.captured,
            "different apk ids capture different state"
        );
    }

    #[test]
    fn truncated_envelope_rejected() {
        let state = ApplicationState::capture(TaskSpec::new(TaskKind::Hanoi, 10), 3);
        let encoded = state.encode();
        let truncated = encoded.slice(0..encoded.len() - 5);
        assert!(matches!(
            ApplicationState::decode(truncated),
            Err(OffloadError::CorruptState { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let state = ApplicationState::capture(TaskSpec::new(TaskKind::Hanoi, 10), 3);
        let mut raw = state.encode().to_vec();
        raw[0] = b'X';
        assert!(matches!(
            ApplicationState::decode(Bytes::from(raw)),
            Err(OffloadError::CorruptState { .. })
        ));
    }

    #[test]
    fn unknown_task_code_rejected() {
        let state = ApplicationState::capture(TaskSpec::new(TaskKind::Hanoi, 10), 3);
        let mut raw = state.encode().to_vec();
        raw[9] = 250; // task kind byte
        assert!(matches!(
            ApplicationState::decode(Bytes::from(raw)),
            Err(OffloadError::CorruptState { .. })
        ));
    }

    #[test]
    fn tiny_envelope_rejected() {
        assert!(ApplicationState::decode(Bytes::from_static(b"MCAS")).is_err());
    }
}
