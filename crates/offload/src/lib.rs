//! # mca-offload — code offloading runtime
//!
//! The building blocks of the mobile code offloading architecture from
//! *Modeling Mobile Code Acceleration in the Cloud* (ICDCS 2017):
//!
//! * [`task`] — the pool of computational tasks used by the paper's workload
//!   simulator (minimax, n-queens, quicksort, bubblesort, …), with both a
//!   deterministic *work model* (how many abstract work units a task costs)
//!   and real, executable Rust implementations used to validate results.
//! * [`flavor`] — the three offloading implementation models of §II-A
//!   (homogeneous, heterogeneous, neutral) and their properties.
//! * [`state`] — application-state encapsulation for the homogeneous model:
//!   the mobile serializes the state needed by the method, the surrogate
//!   reconstructs it and executes the task.
//! * [`request`] — offloading requests and the trace record schema
//!   `<timestamp, user-id, acceleration-group, battery-level, round-trip-time>`
//!   stored by the SDN-accelerator (§IV-A).
//! * [`decision`] — the classic offload-or-execute-locally rule: delegate a
//!   task if and only if the effort of delegating is smaller than the effort
//!   of computing it locally (§II-A).
//! * [`profiler`] — method-level execution-time instrumentation used by the
//!   client-side moderator to detect response-time degradation.
//!
//! Work is measured in abstract **work units**; one work unit is calibrated as
//! one millisecond of execution on a reference acceleration-level-1 cloud
//! core. Every other component (mobile devices, cloud instances) expresses its
//! speed as a multiple of that reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod error;
pub mod flavor;
pub mod profiler;
pub mod request;
pub mod state;
pub mod task;

pub use decision::{DecisionEngine, DecisionInput, OffloadDecision};
pub use error::OffloadError;
pub use flavor::OffloadingModel;
pub use profiler::{MethodProfile, Profiler};
pub use request::{AccelerationGroupId, OffloadRequest, RequestId, TenantId, TraceRecord, UserId};
pub use state::ApplicationState;
pub use task::{TaskKind, TaskOutput, TaskPool, TaskSpec};
