//! The offload-or-execute-locally decision rule.
//!
//! §II-A: *"A smartphone delegates a task to a remote server, if and only if,
//! the computational effort required for the device to delegate the task is
//! less than the actual effort required to process the task by itself."*
//!
//! The decision engine compares the estimated cost of remote execution
//! (serialization + uplink transfer + remote execution + downlink) against
//! local execution on the device, in both time and energy, and produces an
//! [`OffloadDecision`]. The SDN architecture sits behind this decision: only
//! requests that decide to offload reach the accelerator.

use serde::{Deserialize, Serialize};

/// The costs the decision engine weighs for a candidate task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionInput {
    /// Work units of the task (1 work unit = 1 ms on a reference cloud core).
    pub work_units: f64,
    /// Device execution speed as a fraction of the reference cloud core
    /// (e.g. 0.2 means the device is 5× slower).
    pub device_speed_factor: f64,
    /// Expected cloud execution speed factor for the device's current
    /// acceleration group (≥ 1.0 for every level in the paper).
    pub cloud_speed_factor: f64,
    /// Round-trip network latency (mobile ↔ front-end), milliseconds.
    pub network_rtt_ms: f64,
    /// Bytes that must be uploaded (serialized application state).
    pub payload_bytes: usize,
    /// Uplink bandwidth in bytes per millisecond.
    pub uplink_bytes_per_ms: f64,
    /// Constant front-end routing overhead (the ≈150 ms SDN cost), ms.
    pub routing_overhead_ms: f64,
    /// Device active-execution power draw, milliwatts.
    pub device_active_power_mw: f64,
    /// Device radio transmission power draw, milliwatts.
    pub device_radio_power_mw: f64,
}

impl DecisionInput {
    /// Estimated time to execute the task locally on the device, ms.
    pub fn local_time_ms(&self) -> f64 {
        self.work_units / self.device_speed_factor.max(1e-9)
    }

    /// Estimated end-to-end time when offloading, ms.
    pub fn remote_time_ms(&self) -> f64 {
        let transfer = self.payload_bytes as f64 / self.uplink_bytes_per_ms.max(1e-9);
        let exec = self.work_units / self.cloud_speed_factor.max(1e-9);
        self.network_rtt_ms + transfer + self.routing_overhead_ms + exec
    }

    /// Estimated energy for local execution, millijoules.
    pub fn local_energy_mj(&self) -> f64 {
        self.device_active_power_mw * self.local_time_ms() / 1000.0
    }

    /// Estimated energy for offloading (radio active while transferring and
    /// waiting), millijoules.
    pub fn remote_energy_mj(&self) -> f64 {
        self.device_radio_power_mw * self.remote_time_ms() / 1000.0
    }
}

/// Outcome of evaluating the offloading rule for one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadDecision {
    /// Delegate the task to the cloud; carries the predicted speed-up factor
    /// (local time / remote time).
    Offload {
        /// Predicted local-to-remote time ratio (> 1 means offloading is
        /// faster).
        predicted_speedup: f64,
    },
    /// Execute locally; carries the predicted slowdown that offloading would
    /// have caused.
    ExecuteLocally {
        /// Predicted local-to-remote time ratio (≤ 1 here).
        predicted_speedup: f64,
    },
}

impl OffloadDecision {
    /// Whether the decision is to offload.
    pub fn is_offload(self) -> bool {
        matches!(self, OffloadDecision::Offload { .. })
    }

    /// The predicted local/remote speed-up regardless of the decision.
    pub fn predicted_speedup(self) -> f64 {
        match self {
            OffloadDecision::Offload { predicted_speedup }
            | OffloadDecision::ExecuteLocally { predicted_speedup } => predicted_speedup,
        }
    }
}

/// Policy weights for the decision rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionEngine {
    /// Weight of the time criterion in \[0, 1\]; the energy criterion gets the
    /// complement. 1.0 reproduces the paper's pure performance focus
    /// (assumption (d) in §IV).
    pub time_weight: f64,
    /// Minimum combined benefit ratio required to offload (1.0 = offload on
    /// any predicted improvement; higher values are more conservative).
    pub benefit_threshold: f64,
}

impl Default for DecisionEngine {
    fn default() -> Self {
        Self {
            time_weight: 1.0,
            benefit_threshold: 1.0,
        }
    }
}

impl DecisionEngine {
    /// Creates an engine that weighs time and energy equally.
    pub fn balanced() -> Self {
        Self {
            time_weight: 0.5,
            benefit_threshold: 1.0,
        }
    }

    /// Applies the offloading rule to a candidate task.
    pub fn decide(&self, input: &DecisionInput) -> OffloadDecision {
        let time_ratio = input.local_time_ms() / input.remote_time_ms().max(1e-9);
        let energy_ratio = input.local_energy_mj() / input.remote_energy_mj().max(1e-9);
        let w = self.time_weight.clamp(0.0, 1.0);
        let combined = w * time_ratio + (1.0 - w) * energy_ratio;
        if combined > self.benefit_threshold {
            OffloadDecision::Offload {
                predicted_speedup: time_ratio,
            }
        } else {
            OffloadDecision::ExecuteLocally {
                predicted_speedup: time_ratio,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_input() -> DecisionInput {
        DecisionInput {
            work_units: 400.0,
            device_speed_factor: 0.2,
            cloud_speed_factor: 1.0,
            network_rtt_ms: 40.0,
            payload_bytes: 4000,
            uplink_bytes_per_ms: 2000.0,
            routing_overhead_ms: 150.0,
            device_active_power_mw: 2000.0,
            device_radio_power_mw: 1200.0,
        }
    }

    #[test]
    fn heavy_task_on_slow_device_offloads() {
        let input = base_input();
        // local: 400 / 0.2 = 2000 ms; remote: 40 + 2 + 150 + 400 = 592 ms
        let decision = DecisionEngine::default().decide(&input);
        assert!(decision.is_offload());
        assert!(decision.predicted_speedup() > 3.0);
    }

    #[test]
    fn light_task_stays_local() {
        let input = DecisionInput {
            work_units: 20.0,
            ..base_input()
        };
        // local: 100 ms; remote: 40 + 2 + 150 + 20 = 212 ms
        let decision = DecisionEngine::default().decide(&input);
        assert!(!decision.is_offload());
        assert!(decision.predicted_speedup() < 1.0);
    }

    #[test]
    fn fast_device_prefers_local() {
        let input = DecisionInput {
            device_speed_factor: 1.5,
            ..base_input()
        };
        // local: 267 ms; remote: 592 ms
        assert!(!DecisionEngine::default().decide(&input).is_offload());
    }

    #[test]
    fn higher_acceleration_makes_offloading_attractive_again() {
        let borderline = DecisionInput {
            work_units: 60.0,
            ..base_input()
        };
        // local 300 ms; remote at level 1: 40 + 2 + 150 + 60 = 252 -> offload already.
        // Make routing expensive so the level-1 offload is rejected:
        let expensive = DecisionInput {
            routing_overhead_ms: 400.0,
            ..borderline
        };
        assert!(!DecisionEngine::default().decide(&expensive).is_offload());
        // A level-3 group (1.73× acceleration) doesn't change verdict much here,
        // but a big cloud speed-up together with lower routing does:
        let faster = DecisionInput {
            cloud_speed_factor: 1.73,
            routing_overhead_ms: 150.0,
            ..borderline
        };
        assert!(DecisionEngine::default().decide(&faster).is_offload());
    }

    #[test]
    fn energy_aware_engine_can_differ_from_time_only() {
        // Construct a case where time favours local but energy favours remote:
        // radio power much lower than compute power.
        let input = DecisionInput {
            work_units: 50.0,
            device_speed_factor: 0.5,
            device_active_power_mw: 4000.0,
            device_radio_power_mw: 100.0,
            ..base_input()
        };
        // local: 100 ms, remote: 40 + 2 + 150 + 50 = 242 ms -> time says local
        assert!(!DecisionEngine::default().decide(&input).is_offload());
        // energy: local = 4000*0.1 = 400 mJ, remote = 100*0.242 = 24 mJ -> offload
        let energy_only = DecisionEngine {
            time_weight: 0.0,
            benefit_threshold: 1.0,
        };
        assert!(energy_only.decide(&input).is_offload());
    }

    #[test]
    fn threshold_makes_engine_conservative() {
        let input = DecisionInput {
            work_units: 150.0,
            ..base_input()
        };
        // local 750, remote 342 -> ratio ~2.2
        assert!(DecisionEngine::default().decide(&input).is_offload());
        let conservative = DecisionEngine {
            time_weight: 1.0,
            benefit_threshold: 3.0,
        };
        assert!(!conservative.decide(&input).is_offload());
    }

    #[test]
    fn cost_estimates_are_positive_and_consistent() {
        let input = base_input();
        assert!(input.local_time_ms() > 0.0);
        assert!(input.remote_time_ms() > input.network_rtt_ms);
        assert!(input.local_energy_mj() > 0.0);
        assert!(input.remote_energy_mj() > 0.0);
    }
}
