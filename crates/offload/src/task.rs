//! The computational task pool used to generate offloading workload.
//!
//! The paper's simulator is "equipped with a pool of 10 independent tasks for
//! creating computational workload" drawn from "common algorithms found in
//! apps, e.g., quicksort, bubblesort" plus the decision-making algorithms
//! named in the introduction (minimax, n-queens). This module provides those
//! ten algorithms with:
//!
//! * a **work model** ([`TaskSpec::work_units`]) — the deterministic number of
//!   abstract work units a task costs, used by the cloud and mobile
//!   simulators to compute execution time, and
//! * a **real implementation** ([`TaskSpec::execute`]) — an actual Rust
//!   implementation that produces a verifiable [`TaskOutput`], so that the
//!   offloading runtime is exercised end-to-end rather than only in the
//!   abstract.
//!
//! One work unit is calibrated to one millisecond on a reference
//! acceleration-level-1 cloud core.

use crate::error::OffloadError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ten algorithms in the workload pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskKind {
    /// Game-tree minimax search (the paper's static benchmarking task).
    Minimax,
    /// N-queens backtracking solver.
    NQueens,
    /// Quicksort over a pseudo-random integer array.
    QuickSort,
    /// Bubblesort over a pseudo-random integer array.
    BubbleSort,
    /// Mergesort over a pseudo-random integer array.
    MergeSort,
    /// Iterative Fibonacci with big-number-free modular arithmetic.
    Fibonacci,
    /// Dense matrix multiplication.
    MatrixMultiply,
    /// Sieve of Eratosthenes prime counting.
    PrimeSieve,
    /// 0/1 knapsack dynamic program.
    Knapsack,
    /// Towers of Hanoi move counting (recursive).
    Hanoi,
}

impl TaskKind {
    /// All task kinds, in pool order.
    pub const ALL: [TaskKind; 10] = [
        TaskKind::Minimax,
        TaskKind::NQueens,
        TaskKind::QuickSort,
        TaskKind::BubbleSort,
        TaskKind::MergeSort,
        TaskKind::Fibonacci,
        TaskKind::MatrixMultiply,
        TaskKind::PrimeSieve,
        TaskKind::Knapsack,
        TaskKind::Hanoi,
    ];

    /// Short identifier used in traces and logs.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Minimax => "minimax",
            TaskKind::NQueens => "nqueens",
            TaskKind::QuickSort => "quicksort",
            TaskKind::BubbleSort => "bubblesort",
            TaskKind::MergeSort => "mergesort",
            TaskKind::Fibonacci => "fibonacci",
            TaskKind::MatrixMultiply => "matmul",
            TaskKind::PrimeSieve => "primesieve",
            TaskKind::Knapsack => "knapsack",
            TaskKind::Hanoi => "hanoi",
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-specified computational task: which algorithm and how much input.
///
/// The meaning of `input_size` is algorithm specific (search depth, board
/// size, array length, matrix dimension, …); see [`TaskSpec::work_units`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Which algorithm to run.
    pub kind: TaskKind,
    /// Algorithm-specific input size.
    pub input_size: u32,
}

/// Result of actually executing a task implementation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskOutput {
    /// The task that produced this output.
    pub spec: TaskSpec,
    /// Algorithm-specific scalar result (e.g. best minimax score, number of
    /// n-queens solutions, checksum of the sorted array).
    pub result: i64,
    /// Number of elementary operations the implementation actually performed;
    /// used in tests to validate the work model's scaling behaviour.
    pub operations: u64,
}

impl TaskSpec {
    /// Creates a task specification.
    pub fn new(kind: TaskKind, input_size: u32) -> Self {
        Self { kind, input_size }
    }

    /// The static minimax task used throughout the paper's evaluation
    /// (acceleration-level characterization and the 8-hour experiment).
    pub fn paper_static_minimax() -> Self {
        Self::new(TaskKind::Minimax, 9)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::InvalidTask`] if the input size is zero or
    /// large enough to make the work model overflow.
    pub fn validate(&self) -> Result<(), OffloadError> {
        if self.input_size == 0 {
            return Err(OffloadError::InvalidTask {
                reason: "input size must be positive".into(),
            });
        }
        if self.work_units() > 1e12 {
            return Err(OffloadError::InvalidTask {
                reason: format!("task {self:?} exceeds the supported work range"),
            });
        }
        Ok(())
    }

    /// Deterministic cost of the task in abstract work units.
    ///
    /// One work unit is one millisecond on a reference acceleration-level-1
    /// cloud core. The shapes follow the asymptotic complexity of each
    /// algorithm, scaled so that the pool spans roughly 10–1000 work units for
    /// the default input sizes — matching the 10–1000 ms response-time band of
    /// Fig. 4 in the paper.
    pub fn work_units(&self) -> f64 {
        let n = f64::from(self.input_size);
        match self.kind {
            // branching factor 3, depth n
            TaskKind::Minimax => 0.02 * 3f64.powf(n.min(16.0)),
            // roughly n! pruned; use exponential fit
            TaskKind::NQueens => 0.004 * 2.6f64.powf(n.min(14.0)),
            TaskKind::QuickSort => 0.0006 * n * n.max(2.0).log2(),
            TaskKind::BubbleSort => 0.00004 * n * n,
            TaskKind::MergeSort => 0.0005 * n * n.max(2.0).log2(),
            TaskKind::Fibonacci => 0.000_08 * n * n,
            TaskKind::MatrixMultiply => 0.000_02 * n * n * n,
            TaskKind::PrimeSieve => 0.000_25 * n * n.max(2.0).ln().max(1.0),
            TaskKind::Knapsack => 0.000_3 * n * n,
            TaskKind::Hanoi => 0.01 * 2f64.powf(n.min(24.0)),
        }
    }

    /// Size in bytes of the application state transferred when this task is
    /// offloaded under the homogeneous model (input parameters plus captured
    /// method state). The paper assumes transfer size adds no meaningful
    /// overhead over LTE; we keep it small but non-zero so the network model
    /// is exercised.
    pub fn state_bytes(&self) -> usize {
        let n = self.input_size as usize;
        match self.kind {
            TaskKind::Minimax | TaskKind::NQueens | TaskKind::Hanoi | TaskKind::Fibonacci => {
                256 + 16 * n
            }
            TaskKind::QuickSort | TaskKind::BubbleSort | TaskKind::MergeSort => 128 + 4 * n,
            TaskKind::MatrixMultiply => 128 + 8 * n * n,
            TaskKind::PrimeSieve => 64,
            TaskKind::Knapsack => 128 + 8 * n,
        }
    }

    /// Executes the real algorithm and returns its verifiable output.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::InvalidTask`] for specifications rejected by
    /// [`TaskSpec::validate`].
    pub fn execute(&self) -> Result<TaskOutput, OffloadError> {
        self.validate()?;
        let (result, operations) = match self.kind {
            TaskKind::Minimax => minimax(self.input_size.min(12)),
            TaskKind::NQueens => nqueens(self.input_size.min(10)),
            TaskKind::QuickSort => sort_checksum(self.input_size, SortAlgo::Quick),
            TaskKind::BubbleSort => sort_checksum(self.input_size.min(4000), SortAlgo::Bubble),
            TaskKind::MergeSort => sort_checksum(self.input_size, SortAlgo::Merge),
            TaskKind::Fibonacci => fibonacci_mod(self.input_size),
            TaskKind::MatrixMultiply => matmul_checksum(self.input_size.min(220)),
            TaskKind::PrimeSieve => prime_count(self.input_size),
            TaskKind::Knapsack => knapsack(self.input_size.min(4000)),
            TaskKind::Hanoi => hanoi(self.input_size.min(22)),
        };
        Ok(TaskOutput {
            spec: *self,
            result,
            operations,
        })
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(n={})", self.kind, self.input_size)
    }
}

/// The pool of tasks the workload simulator draws from.
///
/// The paper's simulator picks a random task from a pool of ten algorithms and
/// a random amount of processing per request (§VI-A-1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskPool {
    tasks: Vec<TaskSpec>,
}

impl TaskPool {
    /// The default ten-task pool with input sizes chosen so that the work
    /// spans roughly 20–130 work units (mean ≈ 65). With that calibration a
    /// single request lands in the 10–100 ms band of Fig. 4 on an unloaded
    /// level-1 instance, and a two-core level-2 instance saturates between
    /// 32 Hz and 64 Hz of offered load, the knee reported in Fig. 8b.
    pub fn paper_default() -> Self {
        Self {
            tasks: vec![
                TaskSpec::new(TaskKind::Minimax, 7),
                TaskSpec::new(TaskKind::NQueens, 9),
                TaskSpec::new(TaskKind::QuickSort, 15_000),
                TaskSpec::new(TaskKind::BubbleSort, 1_200),
                TaskSpec::new(TaskKind::MergeSort, 15_000),
                TaskSpec::new(TaskKind::Fibonacci, 800),
                TaskSpec::new(TaskKind::MatrixMultiply, 120),
                TaskSpec::new(TaskKind::PrimeSieve, 40_000),
                TaskSpec::new(TaskKind::Knapsack, 500),
                TaskSpec::new(TaskKind::Hanoi, 12),
            ],
        }
    }

    /// Creates a pool from explicit tasks.
    pub fn from_tasks(tasks: Vec<TaskSpec>) -> Self {
        Self { tasks }
    }

    /// Creates a pool containing a single task repeated (the "static load"
    /// configuration used for Fig. 5 and the 8-hour experiment).
    pub fn static_load(task: TaskSpec) -> Self {
        Self { tasks: vec![task] }
    }

    /// Number of tasks in the pool.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks in the pool.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Returns the task at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::UnknownTask`] when `index` is out of range.
    pub fn get(&self, index: usize) -> Result<TaskSpec, OffloadError> {
        self.tasks
            .get(index)
            .copied()
            .ok_or(OffloadError::UnknownTask {
                index,
                pool_size: self.tasks.len(),
            })
    }

    /// Draws a uniformly random task, with a random processing scale applied
    /// to the input (the paper draws both the task and its processing amount
    /// at random).
    ///
    /// For the polynomial-cost algorithms the input size is scaled by
    /// 50 %–150 %; the exponential-cost algorithms (minimax, n-queens, Hanoi)
    /// keep their configured depth, because a ±50 % depth change would swing
    /// the work by several orders of magnitude and no real application varies
    /// its search depth per call.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskSpec {
        let base = *self.tasks.choose(rng).expect("task pool must not be empty");
        match base.kind {
            TaskKind::Minimax | TaskKind::NQueens | TaskKind::Hanoi => base,
            _ => {
                // Scale the input by 50%–150% to model the random amount of
                // processing required per request.
                let scale = rng.gen_range(0.5..1.5);
                let size = ((f64::from(base.input_size) * scale).round() as u32).max(1);
                TaskSpec::new(base.kind, size)
            }
        }
    }

    /// Mean work units across the pool (with unscaled inputs).
    pub fn mean_work_units(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(TaskSpec::work_units).sum::<f64>() / self.tasks.len() as f64
    }
}

impl Default for TaskPool {
    fn default() -> Self {
        Self::paper_default()
    }
}

// ----------------------------------------------------------------------------
// Real algorithm implementations
// ----------------------------------------------------------------------------

enum SortAlgo {
    Quick,
    Bubble,
    Merge,
}

/// Deterministic xorshift generator so task outputs are reproducible without
/// threading an RNG through the execution path.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn minimax(depth: u32) -> (i64, u64) {
    // Minimax over a synthetic ternary game tree with deterministic leaf
    // scores. Returns the root minimax value and the number of visited nodes.
    fn search(node: u64, depth: u32, maximizing: bool, ops: &mut u64) -> i64 {
        *ops += 1;
        if depth == 0 {
            // deterministic leaf score in [-50, 50]
            return ((node.wrapping_mul(2654435761) >> 16) % 101) as i64 - 50;
        }
        let mut best = if maximizing { i64::MIN } else { i64::MAX };
        for child in 0..3u64 {
            let v = search(
                node.wrapping_mul(31).wrapping_add(child),
                depth - 1,
                !maximizing,
                ops,
            );
            best = if maximizing { best.max(v) } else { best.min(v) };
        }
        best
    }
    let mut ops = 0;
    let score = search(1, depth, true, &mut ops);
    (score, ops)
}

fn nqueens(n: u32) -> (i64, u64) {
    fn place(row: u32, n: u32, cols: u32, diag1: u64, diag2: u64, ops: &mut u64) -> u64 {
        *ops += 1;
        if row == n {
            return 1;
        }
        let mut count = 0;
        for col in 0..n {
            let d1 = (row + col) as u64;
            let d2 = (row + n - col) as u64;
            if cols & (1 << col) == 0 && diag1 & (1 << d1) == 0 && diag2 & (1 << d2) == 0 {
                count += place(
                    row + 1,
                    n,
                    cols | (1 << col),
                    diag1 | (1 << d1),
                    diag2 | (1 << d2),
                    ops,
                );
            }
        }
        count
    }
    let mut ops = 0;
    let solutions = place(0, n, 0, 0, 0, &mut ops);
    (solutions as i64, ops)
}

fn random_array(len: u32) -> Vec<i64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..len)
        .map(|_| (xorshift(&mut state) % 1_000_000) as i64)
        .collect()
}

fn sort_checksum(len: u32, algo: SortAlgo) -> (i64, u64) {
    let mut data = random_array(len);
    let mut ops: u64 = 0;
    match algo {
        SortAlgo::Quick => {
            // Lomuto partition with a middle pivot; the pivot is excluded from
            // both recursive calls so the recursion always terminates.
            fn quicksort(a: &mut [i64], ops: &mut u64) {
                if a.len() <= 1 {
                    return;
                }
                let last = a.len() - 1;
                a.swap(a.len() / 2, last);
                let pivot = a[last];
                let mut store = 0usize;
                for i in 0..last {
                    *ops += 1;
                    if a[i] < pivot {
                        a.swap(i, store);
                        store += 1;
                    }
                }
                a.swap(store, last);
                let (left, right) = a.split_at_mut(store);
                quicksort(left, ops);
                quicksort(&mut right[1..], ops);
            }
            quicksort(&mut data, &mut ops);
        }
        SortAlgo::Bubble => {
            let n = data.len();
            for i in 0..n {
                for j in 0..n.saturating_sub(i + 1) {
                    ops += 1;
                    if data[j] > data[j + 1] {
                        data.swap(j, j + 1);
                    }
                }
            }
        }
        SortAlgo::Merge => {
            fn mergesort(a: &[i64], ops: &mut u64) -> Vec<i64> {
                if a.len() <= 1 {
                    return a.to_vec();
                }
                let mid = a.len() / 2;
                let left = mergesort(&a[..mid], ops);
                let right = mergesort(&a[mid..], ops);
                let mut out = Vec::with_capacity(a.len());
                let (mut i, mut j) = (0, 0);
                while i < left.len() && j < right.len() {
                    *ops += 1;
                    if left[i] <= right[j] {
                        out.push(left[i]);
                        i += 1;
                    } else {
                        out.push(right[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&left[i..]);
                out.extend_from_slice(&right[j..]);
                out
            }
            data = mergesort(&data, &mut ops);
        }
    }
    debug_assert!(
        data.windows(2).all(|w| w[0] <= w[1]),
        "sorted output must be ordered"
    );
    // Order-sensitive checksum of the sorted array.
    let checksum = data.iter().enumerate().fold(0i64, |acc, (i, &v)| {
        acc.wrapping_mul(31).wrapping_add(v ^ i as i64)
    });
    (checksum, ops)
}

fn fibonacci_mod(n: u32) -> (i64, u64) {
    const MODULUS: u64 = 1_000_000_007;
    let (mut a, mut b) = (0u64, 1u64);
    let mut ops = 0;
    for _ in 0..n {
        let next = (a + b) % MODULUS;
        a = b;
        b = next;
        ops += 1;
    }
    (a as i64, ops)
}

fn matmul_checksum(n: u32) -> (i64, u64) {
    let n = n as usize;
    let mut state = 42u64;
    let a: Vec<i64> = (0..n * n)
        .map(|_| (xorshift(&mut state) % 100) as i64)
        .collect();
    let b: Vec<i64> = (0..n * n)
        .map(|_| (xorshift(&mut state) % 100) as i64)
        .collect();
    let mut c = vec![0i64; n * n];
    let mut ops = 0u64;
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
                ops += 1;
            }
        }
    }
    let checksum = c
        .iter()
        .fold(0i64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v));
    (checksum, ops)
}

fn prime_count(limit: u32) -> (i64, u64) {
    let limit = limit as usize;
    let mut sieve = vec![true; limit + 1];
    let mut ops = 0u64;
    if limit >= 1 {
        sieve[0] = false;
        if limit >= 1 {
            sieve[1] = false;
        }
    }
    let mut i = 2usize;
    while i * i <= limit {
        if sieve[i] {
            let mut j = i * i;
            while j <= limit {
                sieve[j] = false;
                ops += 1;
                j += i;
            }
        }
        i += 1;
    }
    let count = sieve.iter().filter(|&&p| p).count();
    (count as i64, ops.max(1))
}

fn knapsack(n: u32) -> (i64, u64) {
    // 0/1 knapsack with n items of deterministic weights/values, capacity n/2.
    let n = n as usize;
    let capacity = n / 2 + 1;
    let mut state = 7u64;
    let weights: Vec<usize> = (0..n)
        .map(|_| (xorshift(&mut state) % 10 + 1) as usize)
        .collect();
    let values: Vec<i64> = (0..n)
        .map(|_| (xorshift(&mut state) % 100 + 1) as i64)
        .collect();
    let mut dp = vec![0i64; capacity + 1];
    let mut ops = 0u64;
    for i in 0..n {
        for w in (weights[i]..=capacity).rev() {
            dp[w] = dp[w].max(dp[w - weights[i]] + values[i]);
            ops += 1;
        }
    }
    (dp[capacity], ops.max(1))
}

fn hanoi(n: u32) -> (i64, u64) {
    fn solve(n: u32, ops: &mut u64) {
        if n == 0 {
            return;
        }
        solve(n - 1, ops);
        *ops += 1;
        solve(n - 1, ops);
    }
    let mut ops = 0;
    solve(n, &mut ops);
    (ops as i64, ops.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pool_has_ten_tasks() {
        let pool = TaskPool::paper_default();
        assert_eq!(pool.len(), 10);
        assert!(!pool.is_empty());
        let kinds: std::collections::HashSet<_> = pool.tasks().iter().map(|t| t.kind).collect();
        assert_eq!(kinds.len(), 10, "all pool tasks use distinct algorithms");
    }

    #[test]
    fn default_pool_work_in_expected_band() {
        // Individual pool tasks stay light (tens of work units) so that an
        // unloaded level-1 instance answers within the 10–200 ms band of
        // Fig. 4, and the pool mean sits near 65 work units so that a
        // two-core level-2 instance saturates between 32 and 64 Hz (Fig. 8b).
        let pool = TaskPool::paper_default();
        for t in pool.tasks() {
            let w = t.work_units();
            assert!(w > 5.0 && w < 200.0, "{t} has work {w}");
        }
        let mean = pool.mean_work_units();
        assert!(mean > 40.0 && mean < 90.0, "pool mean work {mean}");
    }

    #[test]
    fn work_units_monotone_in_input_size() {
        for kind in TaskKind::ALL {
            let small = TaskSpec::new(kind, 6).work_units();
            let large = TaskSpec::new(kind, 12).work_units();
            assert!(large > small, "{kind}: {large} <= {small}");
        }
    }

    #[test]
    fn zero_input_rejected() {
        let err = TaskSpec::new(TaskKind::QuickSort, 0).execute().unwrap_err();
        assert!(matches!(err, OffloadError::InvalidTask { .. }));
    }

    #[test]
    fn nqueens_known_solution_counts() {
        assert_eq!(
            TaskSpec::new(TaskKind::NQueens, 4)
                .execute()
                .unwrap()
                .result,
            2
        );
        assert_eq!(
            TaskSpec::new(TaskKind::NQueens, 6)
                .execute()
                .unwrap()
                .result,
            4
        );
        assert_eq!(
            TaskSpec::new(TaskKind::NQueens, 8)
                .execute()
                .unwrap()
                .result,
            92
        );
    }

    #[test]
    fn fibonacci_known_values() {
        assert_eq!(
            TaskSpec::new(TaskKind::Fibonacci, 10)
                .execute()
                .unwrap()
                .result,
            55
        );
        assert_eq!(
            TaskSpec::new(TaskKind::Fibonacci, 20)
                .execute()
                .unwrap()
                .result,
            6765
        );
    }

    #[test]
    fn prime_counts_are_correct() {
        assert_eq!(
            TaskSpec::new(TaskKind::PrimeSieve, 10)
                .execute()
                .unwrap()
                .result,
            4
        );
        assert_eq!(
            TaskSpec::new(TaskKind::PrimeSieve, 100)
                .execute()
                .unwrap()
                .result,
            25
        );
        assert_eq!(
            TaskSpec::new(TaskKind::PrimeSieve, 1000)
                .execute()
                .unwrap()
                .result,
            168
        );
    }

    #[test]
    fn hanoi_move_count_is_exact() {
        assert_eq!(
            TaskSpec::new(TaskKind::Hanoi, 5).execute().unwrap().result,
            31
        );
        assert_eq!(
            TaskSpec::new(TaskKind::Hanoi, 10).execute().unwrap().result,
            1023
        );
    }

    #[test]
    fn sorting_algorithms_agree_on_checksum() {
        let quick = TaskSpec::new(TaskKind::QuickSort, 2000).execute().unwrap();
        let merge = TaskSpec::new(TaskKind::MergeSort, 2000).execute().unwrap();
        let bubble = TaskSpec::new(TaskKind::BubbleSort, 2000).execute().unwrap();
        assert_eq!(quick.result, merge.result);
        assert_eq!(quick.result, bubble.result);
    }

    #[test]
    fn execution_is_deterministic() {
        let a = TaskSpec::new(TaskKind::MatrixMultiply, 50)
            .execute()
            .unwrap();
        let b = TaskSpec::new(TaskKind::MatrixMultiply, 50)
            .execute()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn minimax_score_within_leaf_range() {
        let out = TaskSpec::new(TaskKind::Minimax, 6).execute().unwrap();
        assert!(out.result >= -50 && out.result <= 50);
        // ternary tree of depth 6 visits (3^7 - 1) / 2 = 1093 nodes
        assert_eq!(out.operations, 1093);
    }

    #[test]
    fn operations_scale_with_input() {
        let small = TaskSpec::new(TaskKind::Knapsack, 100)
            .execute()
            .unwrap()
            .operations;
        let large = TaskSpec::new(TaskKind::Knapsack, 400)
            .execute()
            .unwrap()
            .operations;
        assert!(
            large > 4 * small,
            "knapsack ops should scale super-linearly: {small} {large}"
        );
    }

    #[test]
    fn pool_draw_scales_input() {
        let pool = TaskPool::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let t = pool.draw(&mut rng);
            assert!(t.input_size >= 1);
            let base = pool.tasks().iter().find(|b| b.kind == t.kind).unwrap();
            let ratio = f64::from(t.input_size) / f64::from(base.input_size);
            assert!(ratio > 0.45 && ratio < 1.55, "ratio {ratio}");
        }
    }

    #[test]
    fn static_pool_always_draws_same_kind() {
        let pool = TaskPool::static_load(TaskSpec::paper_static_minimax());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(pool.draw(&mut rng).kind, TaskKind::Minimax);
        }
    }

    #[test]
    fn pool_get_out_of_range() {
        let pool = TaskPool::paper_default();
        assert!(pool.get(3).is_ok());
        assert!(matches!(
            pool.get(99),
            Err(OffloadError::UnknownTask {
                index: 99,
                pool_size: 10
            })
        ));
    }

    #[test]
    fn state_bytes_positive_and_scale() {
        for kind in TaskKind::ALL {
            let small = TaskSpec::new(kind, 10).state_bytes();
            assert!(small > 0);
        }
        assert!(
            TaskSpec::new(TaskKind::QuickSort, 1000).state_bytes()
                > TaskSpec::new(TaskKind::QuickSort, 10).state_bytes()
        );
    }
}
