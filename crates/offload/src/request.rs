//! Offloading requests and the trace record schema of the SDN-accelerator.
//!
//! Every request processed by the system is logged as a trace containing the
//! key-value pairs `<timestamp, user-id, acceleration-group, battery-level,
//! round-trip-time>` (§IV-A). Those traces are the evidence the workload
//! predictor learns from.

use crate::task::TaskSpec;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a mobile user (device) in the workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a tenant: one operator (application provider) with its own
/// user population, slot history and cloud account. The paper models a single
/// operator; a production deployment serves many, each predicted and
/// provisioned independently (`mca-fleet`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of an individual offloading request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an acceleration group (level), `a_n` in the paper's model.
///
/// Group ids are small integers ordered by increasing acceleration; group 0 is
/// the lowest level (the demoted t2.micro group in the paper), group 1 the
/// default entry level, and so on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AccelerationGroupId(pub u8);

impl AccelerationGroupId {
    /// The next-higher acceleration group (promotion target).
    pub fn promoted(self) -> Self {
        Self(self.0.saturating_add(1))
    }

    /// The next-lower acceleration group, saturating at 0.
    pub fn demoted(self) -> Self {
        Self(self.0.saturating_sub(1))
    }
}

impl fmt::Display for AccelerationGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

macro_rules! impl_id_snapshot {
    ($($id:ident => $repr:ty),*) => {$(
        impl Snapshot for $id {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
        }
        impl Restore for $id {
            fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
                Ok(Self(<$repr>::decode(cur)?))
            }
        }
    )*};
}

impl_id_snapshot!(UserId => u32, TenantId => u32, RequestId => u64, AccelerationGroupId => u8);

/// A single code-offloading request travelling from a mobile device to the
/// SDN-accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadRequest {
    /// Unique request id assigned by the client.
    pub id: RequestId,
    /// The user (device) issuing the request.
    pub user: UserId,
    /// Acceleration group the device currently requests.
    pub group: AccelerationGroupId,
    /// The method/task to execute remotely.
    pub task: TaskSpec,
    /// Device battery level in percent at submission time.
    pub battery_level: f64,
    /// Simulation time at which the request left the device, in milliseconds.
    pub submitted_at_ms: f64,
    /// Size in bytes of the serialized application state sent uplink.
    pub payload_bytes: usize,
}

impl OffloadRequest {
    /// Convenience constructor that fills the payload size from the task's
    /// state model.
    pub fn new(
        id: RequestId,
        user: UserId,
        group: AccelerationGroupId,
        task: TaskSpec,
        battery_level: f64,
        submitted_at_ms: f64,
    ) -> Self {
        Self {
            id,
            user,
            group,
            task,
            battery_level,
            submitted_at_ms,
            payload_bytes: task.state_bytes(),
        }
    }
}

/// One processed request as stored in the system log (the paper's MySQL
/// trace): `<timestamp, user-id, acceleration-group, battery-level, rtt>`,
/// extended with the timing decomposition used in Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Completion timestamp (simulation time, milliseconds).
    pub timestamp_ms: f64,
    /// The user that issued the request.
    pub user: UserId,
    /// Acceleration group that served the request.
    pub group: AccelerationGroupId,
    /// Device battery level in percent when the request was issued.
    pub battery_level: f64,
    /// End-to-end round-trip time perceived by the device, milliseconds.
    pub round_trip_ms: f64,
    /// Mobile ↔ front-end communication time T1 (both directions), ms.
    pub t1_ms: f64,
    /// Front-end ↔ back-end routing time T2 (both directions), ms.
    pub t2_ms: f64,
    /// Execution time in the cloud instance, ms.
    pub t_cloud_ms: f64,
    /// Whether the request completed successfully (false = dropped).
    pub success: bool,
}

impl TraceRecord {
    /// Total response time reconstructed from the decomposition,
    /// `T_response = T1 + T2 + T_cloud` (Fig. 7a).
    pub fn decomposed_response_ms(&self) -> f64 {
        self.t1_ms + self.t2_ms + self.t_cloud_ms
    }

    /// Returns `true` if the stored round-trip time is consistent with the
    /// component decomposition within `tol` milliseconds. Dropped requests
    /// are exempt (their T_cloud is the time spent before the drop).
    pub fn is_consistent(&self, tol: f64) -> bool {
        !self.success || (self.round_trip_ms - self.decomposed_response_ms()).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskSpec};

    #[test]
    fn promotion_and_demotion_saturate() {
        let g = AccelerationGroupId(1);
        assert_eq!(g.promoted(), AccelerationGroupId(2));
        assert_eq!(g.demoted(), AccelerationGroupId(0));
        assert_eq!(AccelerationGroupId(0).demoted(), AccelerationGroupId(0));
        assert_eq!(
            AccelerationGroupId(255).promoted(),
            AccelerationGroupId(255)
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(UserId(32).to_string(), "u32");
        assert_eq!(RequestId(7).to_string(), "r7");
        assert_eq!(AccelerationGroupId(3).to_string(), "a3");
    }

    #[test]
    fn request_payload_follows_task() {
        let task = TaskSpec::new(TaskKind::MergeSort, 500);
        let req = OffloadRequest::new(
            RequestId(1),
            UserId(8),
            AccelerationGroupId(1),
            task,
            88.0,
            1000.0,
        );
        assert_eq!(req.payload_bytes, task.state_bytes());
    }

    #[test]
    fn trace_consistency() {
        let rec = TraceRecord {
            timestamp_ms: 5000.0,
            user: UserId(1),
            group: AccelerationGroupId(2),
            battery_level: 75.0,
            round_trip_ms: 700.0,
            t1_ms: 80.0,
            t2_ms: 150.0,
            t_cloud_ms: 470.0,
            success: true,
        };
        assert!(rec.is_consistent(1e-6));
        assert_eq!(rec.decomposed_response_ms(), 700.0);
        let bad = TraceRecord {
            round_trip_ms: 900.0,
            ..rec.clone()
        };
        assert!(!bad.is_consistent(1.0));
        let dropped = TraceRecord {
            success: false,
            round_trip_ms: 123.0,
            ..rec
        };
        assert!(dropped.is_consistent(1e-6));
    }
}
