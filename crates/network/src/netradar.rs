//! Synthetic NetRadar-style measurement campaigns (Fig. 11).
//!
//! The paper draws Fig. 11 by aggregating the 2015 NetRadar dataset per
//! operator, technology and time of day. This module generates an equivalent
//! synthetic campaign from the calibrated [`CellularNetwork`] models and
//! performs the same hourly aggregation, so the figure can be regenerated.

use crate::cellular::{CellularNetwork, Operator, Technology};
use crate::latency::LatencyStats;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One synthetic RTT measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetRadarSample {
    /// Operator that served the measurement.
    pub operator: Operator,
    /// Access technology.
    pub technology: Technology,
    /// Time of day of the measurement, fractional hours in `[0, 24)`.
    pub hour_of_day: f64,
    /// Measured round-trip time, ms.
    pub rtt_ms: f64,
}

/// Hourly aggregate of a campaign — one point of a Fig. 11 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourlyLatency {
    /// Hour of day in `[0, 24)`.
    pub hour: u8,
    /// Statistics of the RTT samples that fell in this hour.
    pub stats: LatencyStats,
}

/// A synthetic measurement campaign for one operator and technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetRadarCampaign {
    /// Operator measured by the campaign.
    pub operator: Operator,
    /// Technology measured by the campaign.
    pub technology: Technology,
    /// Collected samples.
    pub samples: Vec<NetRadarSample>,
}

impl NetRadarCampaign {
    /// Runs a synthetic campaign of `sample_count` measurements spread over a
    /// 24-hour day (more samples during waking hours, as in a crowdsourced
    /// dataset).
    pub fn run<R: Rng + ?Sized>(
        operator: Operator,
        technology: Technology,
        sample_count: usize,
        rng: &mut R,
    ) -> Self {
        let network = CellularNetwork::new(operator, technology);
        let mut samples = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            let hour = sample_measurement_hour(rng);
            let rtt = network.sample_rtt_ms(hour, rng);
            samples.push(NetRadarSample {
                operator,
                technology,
                hour_of_day: hour,
                rtt_ms: rtt,
            });
        }
        Self {
            operator,
            technology,
            samples,
        }
    }

    /// Runs a campaign with the same number of samples as the paper's dataset
    /// for this operator/technology pair, scaled down by `scale` (use
    /// `scale = 1` for the full size; the figure harness uses a smaller scale
    /// for speed).
    pub fn run_paper_sized<R: Rng + ?Sized>(
        operator: Operator,
        technology: Technology,
        scale: usize,
        rng: &mut R,
    ) -> Self {
        let profile = crate::cellular::OperatorProfile::lookup(operator, technology);
        let count = (profile.sample_count / scale.max(1)).max(1);
        Self::run(operator, technology, count, rng)
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the campaign holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summary statistics over the entire campaign.
    pub fn overall_stats(&self) -> LatencyStats {
        let rtts: Vec<f64> = self.samples.iter().map(|s| s.rtt_ms).collect();
        LatencyStats::from_samples(&rtts)
    }

    /// Aggregates samples into 24 hourly buckets — the series plotted in
    /// Fig. 11. Hours with no samples produce a zero-count entry.
    pub fn hourly_aggregate(&self) -> Vec<HourlyLatency> {
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 24];
        for s in &self.samples {
            let hour = (s.hour_of_day.rem_euclid(24.0)) as usize;
            buckets[hour.min(23)].push(s.rtt_ms);
        }
        buckets
            .iter()
            .enumerate()
            .map(|(hour, rtts)| HourlyLatency {
                hour: hour as u8,
                stats: LatencyStats::from_samples(rtts),
            })
            .collect()
    }
}

/// Draws the hour of day of a crowdsourced measurement: a mixture favouring
/// waking hours (07–23) over night hours.
fn sample_measurement_hour<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    if rng.gen_bool(0.9) {
        rng.gen_range(7.0..24.0)
    } else {
        rng.gen_range(0.0..7.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn campaign_produces_requested_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = NetRadarCampaign::run(Operator::Alpha, Technology::Lte, 5_000, &mut rng);
        assert_eq!(c.len(), 5_000);
        assert!(!c.is_empty());
        assert!(c.samples.iter().all(|s| s.rtt_ms > 0.0));
        assert!(c
            .samples
            .iter()
            .all(|s| (0.0..24.0).contains(&s.hour_of_day)));
    }

    #[test]
    fn campaign_statistics_match_profile() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = NetRadarCampaign::run(Operator::Beta, Technology::ThreeG, 60_000, &mut rng);
        let stats = c.overall_stats();
        // Paper: beta 3G mean ~141 ms, median ~60 ms.
        assert!(
            (stats.mean_ms - 141.0).abs() / 141.0 < 0.10,
            "mean {}",
            stats.mean_ms
        );
        assert!(
            (stats.median_ms - 60.0).abs() / 60.0 < 0.12,
            "median {}",
            stats.median_ms
        );
    }

    #[test]
    fn hourly_aggregate_has_24_buckets_and_diurnal_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = NetRadarCampaign::run(Operator::Gamma, Technology::Lte, 80_000, &mut rng);
        let hourly = c.hourly_aggregate();
        assert_eq!(hourly.len(), 24);
        let total: usize = hourly.iter().map(|h| h.stats.count).sum();
        assert_eq!(total, c.len(), "every sample lands in exactly one bucket");
        // afternoon RTT above early-morning RTT (diurnal modulation)
        let afternoon = hourly[16].stats.mean_ms;
        let early = hourly[4].stats.mean_ms;
        assert!(afternoon > early, "afternoon {afternoon} early {early}");
    }

    #[test]
    fn paper_sized_campaign_scales() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = NetRadarCampaign::run_paper_sized(Operator::Alpha, Technology::Lte, 100, &mut rng);
        assert_eq!(c.len(), 182_549 / 100);
    }

    #[test]
    fn waking_hours_receive_most_samples() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = NetRadarCampaign::run(Operator::Alpha, Technology::Lte, 20_000, &mut rng);
        let night = c.samples.iter().filter(|s| s.hour_of_day < 7.0).count();
        assert!((night as f64) < 0.2 * c.len() as f64);
    }
}
