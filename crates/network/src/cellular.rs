//! Per-operator 3G/LTE round-trip-time models (§VI-C-4).
//!
//! The paper analyzes three anonymized Finnish operators (α, β, γ) from the
//! NetRadar dataset and reports, per operator and technology, the mean,
//! standard deviation and median of the RTT. The profiles below are calibrated
//! to exactly those means and medians; the heavy-tailed log-normal shape makes
//! the standard deviations land in the reported range as well.

use crate::latency::{standard_normal, LatencyDistribution};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cellular access technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// 3G / HSPA access.
    ThreeG,
    /// 4G / LTE access (the technology the paper's system assumes).
    Lte,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Technology::ThreeG => "3G",
            Technology::Lte => "LTE",
        })
    }
}

/// The three anonymized mobile operators of the paper's latency study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// Operator α.
    Alpha,
    /// Operator β.
    Beta,
    /// Operator γ.
    Gamma,
}

impl Operator {
    /// All operators in the study.
    pub const ALL: [Operator; 3] = [Operator::Alpha, Operator::Beta, Operator::Gamma];
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Operator::Alpha => "alpha",
            Operator::Beta => "beta",
            Operator::Gamma => "gamma",
        })
    }
}

/// Calibration data for one operator/technology pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorProfile {
    /// Operator the profile describes.
    pub operator: Operator,
    /// Access technology the profile describes.
    pub technology: Technology,
    /// Mean RTT reported by the paper, ms.
    pub mean_ms: f64,
    /// Standard deviation reported by the paper, ms (informational; the
    /// generative model matches mean and median exactly and approximates the
    /// standard deviation through its log-normal tail).
    pub std_dev_ms: f64,
    /// Median RTT reported by the paper, ms.
    pub median_ms: f64,
    /// Number of samples in the paper's dataset for this pair.
    pub sample_count: usize,
}

impl OperatorProfile {
    /// The calibration table of §VI-C-4.
    pub fn paper_profiles() -> Vec<OperatorProfile> {
        use Operator::*;
        use Technology::*;
        vec![
            OperatorProfile {
                operator: Alpha,
                technology: ThreeG,
                mean_ms: 128.0,
                std_dev_ms: 362.0,
                median_ms: 51.0,
                sample_count: 205_762,
            },
            OperatorProfile {
                operator: Alpha,
                technology: Lte,
                mean_ms: 41.0,
                std_dev_ms: 56.0,
                median_ms: 34.0,
                sample_count: 182_549,
            },
            OperatorProfile {
                operator: Beta,
                technology: ThreeG,
                mean_ms: 141.0,
                std_dev_ms: 376.0,
                median_ms: 60.0,
                sample_count: 448_942,
            },
            OperatorProfile {
                operator: Beta,
                technology: Lte,
                mean_ms: 36.0,
                std_dev_ms: 70.0,
                median_ms: 25.0,
                sample_count: 493_956,
            },
            OperatorProfile {
                operator: Gamma,
                technology: ThreeG,
                mean_ms: 137.0,
                std_dev_ms: 379.0,
                median_ms: 56.0,
                sample_count: 191_973,
            },
            OperatorProfile {
                operator: Gamma,
                technology: Lte,
                mean_ms: 42.0,
                std_dev_ms: 84.0,
                median_ms: 27.0,
                sample_count: 152_605,
            },
        ]
    }

    /// Looks up the paper profile for one operator/technology pair.
    pub fn lookup(operator: Operator, technology: Technology) -> OperatorProfile {
        Self::paper_profiles()
            .into_iter()
            .find(|p| p.operator == operator && p.technology == technology)
            .expect("every operator/technology pair is in the paper table")
    }

    /// The latency distribution implied by this profile.
    pub fn distribution(&self) -> LatencyDistribution {
        LatencyDistribution::LogNormal {
            median_ms: self.median_ms,
            mean_ms: self.mean_ms,
        }
    }
}

/// A sampling model for the RTT between a device and the cloud front-end over
/// a cellular network, with diurnal variation.
///
/// The diurnal modulation follows the busy-hour pattern visible in Fig. 11:
/// RTTs are slightly elevated during daytime (traffic load) and lowest in the
/// early morning, while the daily average stays at the calibrated mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellularNetwork {
    profile: OperatorProfile,
    /// Peak-to-mean amplitude of the diurnal modulation (0 disables it).
    diurnal_amplitude: f64,
    /// Multiplicative jitter applied on top of the base distribution
    /// (standard deviation of a unit-mean normal factor).
    jitter: f64,
}

impl CellularNetwork {
    /// Creates a network model for the given operator and technology using
    /// the paper's calibration and a 15 % diurnal amplitude.
    pub fn new(operator: Operator, technology: Technology) -> Self {
        Self {
            profile: OperatorProfile::lookup(operator, technology),
            diurnal_amplitude: 0.15,
            jitter: 0.05,
        }
    }

    /// The LTE network of operator β — the configuration with the lowest mean
    /// RTT, used as the system's default access network.
    pub fn paper_default_lte() -> Self {
        Self::new(Operator::Beta, Technology::Lte)
    }

    /// Overrides the diurnal amplitude (0 disables time-of-day effects).
    pub fn with_diurnal_amplitude(mut self, amplitude: f64) -> Self {
        self.diurnal_amplitude = amplitude.clamp(0.0, 0.9);
        self
    }

    /// The calibration profile backing this model.
    pub fn profile(&self) -> OperatorProfile {
        self.profile
    }

    /// Deterministic diurnal factor for a time of day, averaging 1.0 over 24 h.
    ///
    /// `hour_of_day` may be fractional and is taken modulo 24.
    pub fn diurnal_factor(&self, hour_of_day: f64) -> f64 {
        let h = hour_of_day.rem_euclid(24.0);
        // Lowest around 04:00, highest around 16:00.
        let phase = (h - 4.0) / 24.0 * std::f64::consts::TAU;
        1.0 - self.diurnal_amplitude * phase.cos()
    }

    /// Samples one round-trip time at the given time of day, ms.
    pub fn sample_rtt_ms<R: Rng + ?Sized>(&self, hour_of_day: f64, rng: &mut R) -> f64 {
        let base = self.profile.distribution().sample(rng);
        let jitter = 1.0 + self.jitter * standard_normal(rng);
        (base * self.diurnal_factor(hour_of_day) * jitter.max(0.1)).max(1.0)
    }

    /// Samples the one-way latency (half the RTT) at the given time of day.
    pub fn sample_one_way_ms<R: Rng + ?Sized>(&self, hour_of_day: f64, rng: &mut R) -> f64 {
        self.sample_rtt_ms(hour_of_day, rng) / 2.0
    }

    /// Mean RTT of the underlying profile, ms.
    pub fn mean_rtt_ms(&self) -> f64 {
        self.profile.mean_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_table_has_six_profiles() {
        let profiles = OperatorProfile::paper_profiles();
        assert_eq!(profiles.len(), 6);
        for op in Operator::ALL {
            for tech in [Technology::ThreeG, Technology::Lte] {
                let p = OperatorProfile::lookup(op, tech);
                assert!(p.mean_ms > 0.0 && p.median_ms > 0.0);
                assert!(
                    p.mean_ms >= p.median_ms,
                    "log-normal requires mean >= median"
                );
            }
        }
    }

    #[test]
    fn lte_is_faster_than_3g_for_every_operator() {
        for op in Operator::ALL {
            let lte = OperatorProfile::lookup(op, Technology::Lte);
            let threeg = OperatorProfile::lookup(op, Technology::ThreeG);
            assert!(lte.mean_ms < threeg.mean_ms);
            assert!(lte.median_ms < threeg.median_ms);
        }
    }

    #[test]
    fn sampled_mean_matches_paper_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let net =
            CellularNetwork::new(Operator::Alpha, Technology::Lte).with_diurnal_amplitude(0.0);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| net.sample_rtt_ms(12.0, &mut rng))
            .collect();
        let stats = LatencyStats::from_samples(&samples);
        assert!(
            (stats.mean_ms - 41.0).abs() / 41.0 < 0.06,
            "mean {}",
            stats.mean_ms
        );
        assert!(
            (stats.median_ms - 34.0).abs() / 34.0 < 0.08,
            "median {}",
            stats.median_ms
        );
    }

    #[test]
    fn diurnal_factor_averages_to_one() {
        let net = CellularNetwork::new(Operator::Beta, Technology::Lte);
        let mean: f64 = (0..240)
            .map(|i| net.diurnal_factor(i as f64 / 10.0))
            .sum::<f64>()
            / 240.0;
        assert!((mean - 1.0).abs() < 1e-6);
        assert!(net.diurnal_factor(16.0) > net.diurnal_factor(4.0));
    }

    #[test]
    fn diurnal_factor_wraps_around_midnight() {
        let net = CellularNetwork::new(Operator::Beta, Technology::Lte);
        assert!((net.diurnal_factor(25.0) - net.diurnal_factor(1.0)).abs() < 1e-12);
        assert!((net.diurnal_factor(-1.0) - net.diurnal_factor(23.0)).abs() < 1e-12);
    }

    #[test]
    fn one_way_is_half_rtt_on_average() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = CellularNetwork::paper_default_lte().with_diurnal_amplitude(0.0);
        let rtts: f64 = (0..20_000)
            .map(|_| net.sample_rtt_ms(12.0, &mut rng))
            .sum::<f64>()
            / 20_000.0;
        let one_way: f64 = (0..20_000)
            .map(|_| net.sample_one_way_ms(12.0, &mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!((one_way * 2.0 - rtts).abs() / rtts < 0.05);
    }

    #[test]
    fn samples_are_strictly_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = CellularNetwork::new(Operator::Gamma, Technology::ThreeG);
        for i in 0..5_000 {
            let s = net.sample_rtt_ms(i as f64 % 24.0, &mut rng);
            assert!(s >= 1.0);
        }
    }

    #[test]
    fn default_network_is_lowest_latency_lte() {
        let net = CellularNetwork::paper_default_lte();
        assert_eq!(net.profile().operator, Operator::Beta);
        assert_eq!(net.profile().technology, Technology::Lte);
        assert_eq!(net.mean_rtt_ms(), 36.0);
    }
}
