//! Latency distributions and summary statistics.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution from which round-trip times (in milliseconds) are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDistribution {
    /// Always the same value. Useful for tests and for the paper's
    /// "stable LTE / cloudlet-like latency" assumption.
    Constant {
        /// The fixed RTT in milliseconds.
        rtt_ms: f64,
    },
    /// Uniformly distributed between `low_ms` and `high_ms`.
    Uniform {
        /// Lower bound (inclusive), ms.
        low_ms: f64,
        /// Upper bound (exclusive), ms.
        high_ms: f64,
    },
    /// Log-normal distribution parameterized by its median and mean, the two
    /// statistics the paper reports for each operator/technology. Heavy right
    /// tails (occasional multi-second RTTs) arise naturally, matching the
    /// large standard deviations in §VI-C-4.
    LogNormal {
        /// Median RTT, ms (determines `mu = ln(median)`).
        median_ms: f64,
        /// Mean RTT, ms (determines `sigma` via `mean = e^{mu + sigma^2/2}`).
        mean_ms: f64,
    },
}

impl LatencyDistribution {
    /// Samples one round-trip time in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are non-positive or inconsistent
    /// (e.g. a log-normal whose mean is below its median).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyDistribution::Constant { rtt_ms } => {
                assert!(rtt_ms >= 0.0, "constant RTT must be non-negative");
                rtt_ms
            }
            LatencyDistribution::Uniform { low_ms, high_ms } => {
                assert!(low_ms >= 0.0 && high_ms > low_ms, "invalid uniform bounds");
                rng.gen_range(low_ms..high_ms)
            }
            LatencyDistribution::LogNormal { median_ms, mean_ms } => {
                let (mu, sigma) = lognormal_params(median_ms, mean_ms);
                (mu + sigma * standard_normal(rng)).exp()
            }
        }
    }

    /// The theoretical mean of the distribution, ms.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            LatencyDistribution::Constant { rtt_ms } => rtt_ms,
            LatencyDistribution::Uniform { low_ms, high_ms } => (low_ms + high_ms) / 2.0,
            LatencyDistribution::LogNormal { mean_ms, .. } => mean_ms,
        }
    }

    /// The theoretical median of the distribution, ms.
    pub fn median_ms(&self) -> f64 {
        match *self {
            LatencyDistribution::Constant { rtt_ms } => rtt_ms,
            LatencyDistribution::Uniform { low_ms, high_ms } => (low_ms + high_ms) / 2.0,
            LatencyDistribution::LogNormal { median_ms, .. } => median_ms,
        }
    }
}

/// Converts the paper's (median, mean) parameterization into the standard
/// log-normal parameters `(mu, sigma)`.
///
/// # Panics
///
/// Panics if `median <= 0` or `mean < median` (a log-normal's mean is always
/// at least its median).
pub(crate) fn lognormal_params(median_ms: f64, mean_ms: f64) -> (f64, f64) {
    assert!(median_ms > 0.0, "median must be positive");
    assert!(mean_ms >= median_ms, "log-normal mean must be >= median");
    let mu = median_ms.ln();
    let sigma = (2.0 * (mean_ms / median_ms).ln()).sqrt();
    (mu, sigma)
}

/// Samples a standard normal variate using the Box–Muller transform. Kept
/// local so the crate only depends on `rand`'s uniform sampling.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Summary statistics of a latency sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_dev_ms: f64,
    /// Median, ms.
    pub median_ms: f64,
    /// Minimum, ms.
    pub min_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes summary statistics from raw samples. Returns the default
    /// (all-zero) value for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Self {
            count,
            mean_ms: mean,
            std_dev_ms: var.sqrt(),
            median_ms: median,
            min_ms: sorted[0],
            max_ms: sorted[count - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_distribution_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LatencyDistribution::Constant { rtt_ms: 36.0 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 36.0);
        }
        assert_eq!(d.mean_ms(), 36.0);
        assert_eq!(d.median_ms(), 36.0);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LatencyDistribution::Uniform {
            low_ms: 100.0,
            high_ms: 5000.0,
        };
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((100.0..5000.0).contains(&s));
        }
        assert_eq!(d.mean_ms(), 2550.0);
    }

    #[test]
    fn lognormal_matches_target_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LatencyDistribution::LogNormal {
            median_ms: 25.0,
            mean_ms: 36.0,
        };
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert!(
            (stats.mean_ms - 36.0).abs() / 36.0 < 0.05,
            "mean {}",
            stats.mean_ms
        );
        assert!(
            (stats.median_ms - 25.0).abs() / 25.0 < 0.05,
            "median {}",
            stats.median_ms
        );
        assert!(stats.min_ms > 0.0);
    }

    #[test]
    fn lognormal_has_heavy_right_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = LatencyDistribution::LogNormal {
            median_ms: 51.0,
            mean_ms: 128.0,
        };
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let stats = LatencyStats::from_samples(&samples);
        // mean well above median and SD comparable to the paper's (~360 for 3G)
        assert!(stats.mean_ms > 1.8 * stats.median_ms);
        assert!(stats.std_dev_ms > 150.0, "std dev {}", stats.std_dev_ms);
    }

    #[test]
    #[should_panic(expected = "mean must be >= median")]
    fn lognormal_rejects_mean_below_median() {
        lognormal_params(100.0, 50.0);
    }

    #[test]
    fn stats_of_known_set() {
        let stats = LatencyStats::from_samples(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.mean_ms, 25.0);
        assert_eq!(stats.median_ms, 25.0);
        assert_eq!(stats.min_ms, 10.0);
        assert_eq!(stats.max_ms, 40.0);
        assert!((stats.std_dev_ms - 12.909944).abs() < 1e-5);
    }

    #[test]
    fn stats_of_empty_set_default() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert!(stats.mean_ms.abs() < 0.02);
        assert!((stats.std_dev_ms - 1.0).abs() < 0.02);
    }
}
