//! Payload transfer time model.
//!
//! The paper's assumption (c) states that over LTE "the size of the data
//! transferred and network latency do not incur overhead in the offloading
//! process" — because the homogeneous model only ships a compact application
//! state. The transfer model is nevertheless explicit so that the assumption
//! can be checked (and violated, e.g. for 3G or large payloads) rather than
//! hard-coded.

use crate::cellular::Technology;
use serde::{Deserialize, Serialize};

/// Bandwidth model for uplink/downlink payload transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Uplink throughput in bytes per millisecond.
    pub uplink_bytes_per_ms: f64,
    /// Downlink throughput in bytes per millisecond.
    pub downlink_bytes_per_ms: f64,
}

impl TransferModel {
    /// Typical sustained throughput for an access technology
    /// (LTE ≈ 20 Mbit/s up / 40 Mbit/s down; 3G ≈ 2 Mbit/s up / 6 Mbit/s down).
    pub fn for_technology(technology: Technology) -> Self {
        match technology {
            Technology::Lte => Self {
                uplink_bytes_per_ms: 20_000.0 / 8.0,
                downlink_bytes_per_ms: 40_000.0 / 8.0,
            },
            Technology::ThreeG => Self {
                uplink_bytes_per_ms: 2_000.0 / 8.0,
                downlink_bytes_per_ms: 6_000.0 / 8.0,
            },
        }
    }

    /// Time to upload `bytes` of serialized application state, ms.
    pub fn uplink_time_ms(&self, bytes: usize) -> f64 {
        bytes as f64 / self.uplink_bytes_per_ms.max(1e-9)
    }

    /// Time to download a result of `bytes`, ms.
    pub fn downlink_time_ms(&self, bytes: usize) -> f64 {
        bytes as f64 / self.downlink_bytes_per_ms.max(1e-9)
    }

    /// Returns `true` when transferring `bytes` up and a result of
    /// `result_bytes` down stays below `budget_ms` — the formal version of the
    /// paper's "transfer adds no overhead" assumption.
    pub fn transfer_is_negligible(
        &self,
        bytes: usize,
        result_bytes: usize,
        budget_ms: f64,
    ) -> bool {
        self.uplink_time_ms(bytes) + self.downlink_time_ms(result_bytes) <= budget_ms
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::for_technology(Technology::Lte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_faster_than_3g() {
        let lte = TransferModel::for_technology(Technology::Lte);
        let threeg = TransferModel::for_technology(Technology::ThreeG);
        assert!(lte.uplink_time_ms(100_000) < threeg.uplink_time_ms(100_000));
        assert!(lte.downlink_time_ms(100_000) < threeg.downlink_time_ms(100_000));
    }

    #[test]
    fn typical_offload_payload_is_negligible_on_lte() {
        // A minimax application state is a few hundred bytes (task.rs), and
        // the result is small; over LTE this is well under 10 ms.
        let lte = TransferModel::default();
        assert!(lte.transfer_is_negligible(1_000, 200, 10.0));
    }

    #[test]
    fn large_payload_is_not_negligible_on_3g() {
        let threeg = TransferModel::for_technology(Technology::ThreeG);
        // 1 MB over 2 Mbit/s ~ 4 s
        assert!(!threeg.transfer_is_negligible(1_000_000, 1_000, 100.0));
        assert!(threeg.uplink_time_ms(1_000_000) > 3_000.0);
    }

    #[test]
    fn transfer_times_scale_linearly() {
        let lte = TransferModel::default();
        let t1 = lte.uplink_time_ms(10_000);
        let t2 = lte.uplink_time_ms(20_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert_eq!(lte.uplink_time_ms(0), 0.0);
    }
}
