//! # mca-network — cellular network substrate
//!
//! *Modeling Mobile Code Acceleration in the Cloud* assumes that offloading
//! happens over LTE with cloudlet-like latency (§IV assumption (c), §VII-2)
//! and justifies that assumption with a large-scale analysis of the NetRadar
//! dataset: 3G and LTE round-trip times for three anonymized Finnish mobile
//! operators (§VI-C-4, Fig. 11). The dataset itself is not distributable, so
//! this crate synthesizes an equivalent:
//!
//! * [`cellular`] — per-operator, per-technology RTT models calibrated to the
//!   mean / standard deviation / median values reported in the paper, with a
//!   diurnal (time-of-day) modulation,
//! * [`netradar`] — a synthetic NetRadar-style measurement campaign generator
//!   and the hourly aggregation used to draw Fig. 11,
//! * [`latency`] — reusable latency distributions (constant, uniform,
//!   log-normal) and summary statistics,
//! * [`transfer`] — payload transfer times over each technology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellular;
pub mod latency;
pub mod netradar;
pub mod transfer;

pub use cellular::{CellularNetwork, Operator, OperatorProfile, Technology};
pub use latency::{LatencyDistribution, LatencyStats};
pub use netradar::{HourlyLatency, NetRadarCampaign, NetRadarSample};
pub use transfer::TransferModel;
