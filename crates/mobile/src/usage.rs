//! Smartphone usage-session model (§VI-C-1).
//!
//! The paper deployed a tracking application on the smartphones of six
//! participants for three months. Combining the participants' data (and
//! removing long inactive night periods), the authors extract an inter-arrival
//! time between offloadable application sessions of **100–5000 ms**, which
//! then drives the simulator's inter-arrival mode for the 8-hour and 16-hour
//! experiments.
//!
//! The raw study is not available, so [`UsageStudy`] is a generative
//! substitute: it synthesizes per-participant session traces with a diurnal
//! activity profile (no activity at night) and produces exactly the
//! inter-arrival distribution the paper uses — a bounded, right-skewed
//! distribution over `[100 ms, 5000 ms]` — via [`InterArrivalSampler`].

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inter-arrival bounds extracted by the paper, in milliseconds.
pub const PAPER_INTER_ARRIVAL_MIN_MS: f64 = 100.0;
/// Upper inter-arrival bound extracted by the paper, in milliseconds.
pub const PAPER_INTER_ARRIVAL_MAX_MS: f64 = 5_000.0;

/// One application session recorded on a participant's device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Day of the study, starting at 0.
    pub day: u32,
    /// Start time within the day, fractional hours.
    pub start_hour: f64,
    /// Session length in seconds.
    pub duration_s: f64,
    /// Number of offloadable requests the session generated.
    pub requests: u32,
}

/// The synthesized trace of a single participant over the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticipantTrace {
    /// Participant index (0–5 in the paper's study).
    pub participant: u32,
    /// Recorded sessions, in chronological order.
    pub sessions: Vec<SessionRecord>,
}

impl ParticipantTrace {
    /// Total number of sessions recorded for this participant.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total number of offloadable requests across all sessions.
    pub fn request_count(&self) -> u64 {
        self.sessions.iter().map(|s| u64::from(s.requests)).sum()
    }

    /// Returns `true` if no session starts within the inactive night window
    /// `[0:00, 6:00)` — the paper removes these periods before extracting
    /// inter-arrival times.
    pub fn nights_are_inactive(&self) -> bool {
        self.sessions.iter().all(|s| s.start_hour >= 6.0)
    }
}

/// The synthetic 3-month, 6-participant usage study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageStudy {
    /// One trace per participant.
    pub participants: Vec<ParticipantTrace>,
    /// Length of the study in days.
    pub days: u32,
}

impl UsageStudy {
    /// Number of participants in the paper's study.
    pub const PAPER_PARTICIPANTS: u32 = 6;
    /// Length of the paper's study in days (three months).
    pub const PAPER_DAYS: u32 = 90;

    /// Synthesizes a study with the paper's dimensions (6 participants,
    /// 90 days).
    pub fn paper_sized<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::synthesize(Self::PAPER_PARTICIPANTS, Self::PAPER_DAYS, rng)
    }

    /// Synthesizes a study with custom dimensions.
    pub fn synthesize<R: Rng + ?Sized>(participants: u32, days: u32, rng: &mut R) -> Self {
        let traces = (0..participants)
            .map(|participant| {
                // participants differ in how heavily they use their phone
                let daily_sessions = rng.gen_range(15.0..45.0);
                let mut sessions = Vec::new();
                for day in 0..days {
                    let today = sample_poisson(daily_sessions, rng);
                    for _ in 0..today {
                        let start_hour = sample_active_hour(rng);
                        let duration_s: f64 = rng.gen_range(20.0..600.0);
                        // roughly one offloadable request every few seconds of use
                        let requests = (duration_s / rng.gen_range(2.0..8.0)).ceil() as u32;
                        sessions.push(SessionRecord {
                            day,
                            start_hour,
                            duration_s,
                            requests,
                        });
                    }
                }
                sessions.sort_by(|a, b| {
                    (a.day, a.start_hour)
                        .partial_cmp(&(b.day, b.start_hour))
                        .expect("session times are finite")
                });
                ParticipantTrace {
                    participant,
                    sessions,
                }
            })
            .collect();
        Self {
            participants: traces,
            days,
        }
    }

    /// Total sessions across all participants.
    pub fn total_sessions(&self) -> usize {
        self.participants
            .iter()
            .map(ParticipantTrace::session_count)
            .sum()
    }

    /// Extracts the combined inter-arrival sampler the paper derives from the
    /// study: a bounded right-skewed distribution over
    /// `[100 ms, 5000 ms]`.
    pub fn inter_arrival_sampler(&self) -> InterArrivalSampler {
        InterArrivalSampler::paper_calibrated()
    }
}

/// Samples the inter-arrival time between consecutive offloading requests of
/// an active user, calibrated to the paper's 100–5000 ms range.
///
/// The shape is a truncated exponential: most requests follow each other
/// within a second (interactive bursts), with a tail up to the 5-second cap
/// (the paper's removal of longer gaps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterArrivalSampler {
    /// Minimum inter-arrival time, ms.
    pub min_ms: f64,
    /// Maximum inter-arrival time, ms.
    pub max_ms: f64,
    /// Mean of the underlying (untruncated) exponential, ms.
    pub mean_ms: f64,
}

impl InterArrivalSampler {
    /// The sampler calibrated to the paper's study (100–5000 ms, mean ≈ 1.2 s).
    pub fn paper_calibrated() -> Self {
        Self {
            min_ms: PAPER_INTER_ARRIVAL_MIN_MS,
            max_ms: PAPER_INTER_ARRIVAL_MAX_MS,
            mean_ms: 1_200.0,
        }
    }

    /// Creates a sampler with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not ordered or non-positive.
    pub fn new(min_ms: f64, max_ms: f64, mean_ms: f64) -> Self {
        assert!(
            min_ms > 0.0 && max_ms > min_ms,
            "bounds must satisfy 0 < min < max"
        );
        assert!(mean_ms > 0.0, "mean must be positive");
        Self {
            min_ms,
            max_ms,
            mean_ms,
        }
    }

    /// Samples one inter-arrival time in milliseconds.
    pub fn sample_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let exp = -self.mean_ms * u.ln();
        (self.min_ms + exp).min(self.max_ms)
    }

    /// Mean offered request rate of one user in requests per second.
    pub fn mean_rate_per_s(&self) -> f64 {
        // Approximation using the untruncated mean, adequate for sizing
        // workloads; the truncation lowers the true mean slightly.
        1_000.0 / (self.min_ms + self.mean_ms)
    }
}

impl Default for InterArrivalSampler {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Hour-of-day distribution of session starts: nothing at night (the paper
/// removes inactive night periods), peaks in the morning, lunch and evening.
fn sample_active_hour<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let hour = rng.gen_range(6.0..24.0);
        // acceptance weights: evening > lunch > morning > afternoon
        let weight = match hour as u32 {
            6..=8 => 0.5,
            9..=11 => 0.7,
            12..=13 => 0.8,
            14..=16 => 0.6,
            17..=22 => 1.0,
            _ => 0.4,
        };
        if rng.gen_bool(weight) {
            return hour;
        }
    }
}

/// Samples a Poisson-distributed count via inversion (adequate for the small
/// means used here).
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u32 {
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_sized_study_dimensions() {
        let mut rng = StdRng::seed_from_u64(1);
        let study = UsageStudy::paper_sized(&mut rng);
        assert_eq!(study.participants.len(), 6);
        assert_eq!(study.days, 90);
        assert!(
            study.total_sessions() > 6 * 90 * 5,
            "participants use their phones daily"
        );
    }

    #[test]
    fn nights_are_removed() {
        let mut rng = StdRng::seed_from_u64(2);
        let study = UsageStudy::synthesize(3, 30, &mut rng);
        for p in &study.participants {
            assert!(p.nights_are_inactive());
        }
    }

    #[test]
    fn sessions_are_chronological() {
        let mut rng = StdRng::seed_from_u64(3);
        let study = UsageStudy::synthesize(2, 20, &mut rng);
        for p in &study.participants {
            assert!(p
                .sessions
                .windows(2)
                .all(|w| (w[0].day, w[0].start_hour) <= (w[1].day, w[1].start_hour)));
            assert!(p.request_count() >= p.session_count() as u64);
        }
    }

    #[test]
    fn inter_arrival_within_paper_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = InterArrivalSampler::paper_calibrated();
        for _ in 0..10_000 {
            let s = sampler.sample_ms(&mut rng);
            assert!((100.0..=5_000.0).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn inter_arrival_distribution_is_right_skewed_and_uses_full_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = InterArrivalSampler::paper_calibrated();
        let samples: Vec<f64> = (0..50_000).map(|_| sampler.sample_ms(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let below_1s =
            samples.iter().filter(|&&s| s < 1_000.0).count() as f64 / samples.len() as f64;
        let at_cap =
            samples.iter().filter(|&&s| s >= 4_999.0).count() as f64 / samples.len() as f64;
        assert!(mean > 800.0 && mean < 1_600.0, "mean {mean}");
        assert!(below_1s > 0.4, "short gaps dominate: {below_1s}");
        assert!(at_cap > 0.005 && at_cap < 0.15, "cap mass {at_cap}");
    }

    #[test]
    fn mean_rate_is_sub_hertz_per_user() {
        let sampler = InterArrivalSampler::paper_calibrated();
        let rate = sampler.mean_rate_per_s();
        assert!(rate > 0.3 && rate < 1.5, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "bounds must satisfy")]
    fn invalid_bounds_panic() {
        let _ = InterArrivalSampler::new(500.0, 100.0, 50.0);
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mean: f64 = (0..5_000)
            .map(|_| f64::from(sample_poisson(20.0, &mut rng)))
            .sum::<f64>()
            / 5_000.0;
        assert!((mean - 20.0).abs() < 1.0, "poisson mean {mean}");
    }

    #[test]
    fn study_sampler_matches_paper_calibration() {
        let mut rng = StdRng::seed_from_u64(7);
        let study = UsageStudy::synthesize(2, 5, &mut rng);
        let sampler = study.inter_arrival_sampler();
        assert_eq!(sampler.min_ms, PAPER_INTER_ARRIVAL_MIN_MS);
        assert_eq!(sampler.max_ms, PAPER_INTER_ARRIVAL_MAX_MS);
    }
}
