//! Battery model.
//!
//! Battery level is part of every trace record logged by the SDN-accelerator
//! (`<timestamp, user-id, acceleration-group, battery-level, rtt>`), and the
//! discussion in §VII-3 sketches a battery-aware promotion policy. This model
//! keeps the energy accounting simple: a capacity in milliwatt-hours drained
//! by (power, duration) pairs.

use serde::{Deserialize, Serialize};

/// A rechargeable battery with a fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_mwh: f64,
    remaining_mwh: f64,
}

impl Battery {
    /// Creates a full battery of the given capacity (milliwatt-hours).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    pub fn new(capacity_mwh: f64) -> Self {
        assert!(capacity_mwh > 0.0, "battery capacity must be positive");
        Self {
            capacity_mwh,
            remaining_mwh: capacity_mwh,
        }
    }

    /// Creates a battery at a given charge percentage.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive or the percentage is outside
    /// `[0, 100]`.
    pub fn at_level(capacity_mwh: f64, percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percentage must be within [0, 100]"
        );
        let mut b = Self::new(capacity_mwh);
        b.remaining_mwh = capacity_mwh * percent / 100.0;
        b
    }

    /// Remaining charge as a percentage in `[0, 100]`.
    pub fn level_percent(&self) -> f64 {
        (self.remaining_mwh / self.capacity_mwh * 100.0).clamp(0.0, 100.0)
    }

    /// Remaining energy in milliwatt-hours.
    pub fn remaining_mwh(&self) -> f64 {
        self.remaining_mwh
    }

    /// Nominal capacity in milliwatt-hours.
    pub fn capacity_mwh(&self) -> f64 {
        self.capacity_mwh
    }

    /// Returns `true` once the battery is fully drained.
    pub fn is_empty(&self) -> bool {
        self.remaining_mwh <= 0.0
    }

    /// Drains the battery by running a load of `power_mw` for `duration_ms`.
    /// Returns the energy actually consumed in milliwatt-hours (less than the
    /// request if the battery ran out).
    pub fn drain(&mut self, power_mw: f64, duration_ms: f64) -> f64 {
        let requested_mwh = (power_mw.max(0.0) * duration_ms.max(0.0)) / 3_600_000.0;
        let consumed = requested_mwh.min(self.remaining_mwh);
        self.remaining_mwh -= consumed;
        consumed
    }

    /// Recharges the battery to full.
    pub fn recharge(&mut self) {
        self.remaining_mwh = self.capacity_mwh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_battery_is_full() {
        let b = Battery::new(10_000.0);
        assert_eq!(b.level_percent(), 100.0);
        assert!(!b.is_empty());
        assert_eq!(b.capacity_mwh(), 10_000.0);
    }

    #[test]
    fn drain_accounts_energy() {
        let mut b = Battery::new(3_600.0); // 3600 mWh
                                           // 1000 mW for one hour = 1000 mWh
        let consumed = b.drain(1_000.0, 3_600_000.0);
        assert!((consumed - 1_000.0).abs() < 1e-9);
        assert!((b.remaining_mwh() - 2_600.0).abs() < 1e-9);
        assert!((b.level_percent() - 72.222).abs() < 0.01);
    }

    #[test]
    fn drain_saturates_at_zero() {
        let mut b = Battery::new(1.0);
        let consumed = b.drain(1_000_000.0, 3_600_000.0);
        assert!((consumed - 1.0).abs() < 1e-9);
        assert!(b.is_empty());
        assert_eq!(b.level_percent(), 0.0);
        // further draining consumes nothing
        assert_eq!(b.drain(1_000.0, 1_000.0), 0.0);
    }

    #[test]
    fn at_level_and_recharge() {
        let mut b = Battery::at_level(10_000.0, 25.0);
        assert!((b.level_percent() - 25.0).abs() < 1e-9);
        b.recharge();
        assert_eq!(b.level_percent(), 100.0);
    }

    #[test]
    fn negative_inputs_consume_nothing() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.drain(-5.0, 1000.0), 0.0);
        assert_eq!(b.drain(5.0, -1000.0), 0.0);
        assert_eq!(b.level_percent(), 100.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "percentage must be within")]
    fn bad_percentage_panics() {
        let _ = Battery::at_level(100.0, 150.0);
    }
}
