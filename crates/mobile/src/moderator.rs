//! The client-side moderator: response-time monitoring and promotion.
//!
//! §I: the moderator "monitors the execution time of the code in the
//! application, and promotes the execution of code to a higher level of
//! acceleration when it detects that the response time of the application
//! starts to degrade." §VI-C-3: the evaluated configuration promotes with a
//! static probability of 1/50 per request, and the SDN-accelerator is
//! "released from the overhead of monitoring and tracking users" because the
//! decision is made on the device.

use crate::device::DeviceProfile;
use mca_offload::{AccelerationGroupId, Profiler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the moderator decides to request a higher acceleration group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PromotionPolicy {
    /// Promote with a fixed probability after each completed request — the
    /// paper's evaluated configuration uses `probability = 1/50`.
    Probabilistic {
        /// Per-request promotion probability in `[0, 1]`.
        probability: f64,
    },
    /// Promote when the observed response time of a request exceeds a fixed
    /// threshold (the "if processing requires more than t milliseconds"
    /// example of §VI-C-3).
    ResponseTimeThreshold {
        /// Threshold in milliseconds.
        threshold_ms: f64,
    },
    /// Promote when the rolling response time degrades by more than the given
    /// ratio (recent window mean vs older window mean).
    Degradation {
        /// Promotion triggers when recent/older mean exceeds this ratio.
        ratio: f64,
    },
    /// Battery-aware policy from the discussion in §VII-3: promote when the
    /// battery drops below a threshold (to shorten radio-on time) **or** when
    /// the response time exceeds the latency threshold.
    BatteryAware {
        /// Battery level (percent) below which the device requests more
        /// acceleration.
        battery_threshold_percent: f64,
        /// Response-time threshold in milliseconds.
        latency_threshold_ms: f64,
    },
    /// Never promote (the control configuration, e.g. user 32 in Fig. 9b).
    Never,
}

impl PromotionPolicy {
    /// The paper's static 1/50 promotion probability.
    pub fn paper_default() -> Self {
        PromotionPolicy::Probabilistic {
            probability: 1.0 / 50.0,
        }
    }
}

/// Event emitted by the moderator after observing a completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeratorEvent {
    /// Keep the current acceleration group.
    Stay,
    /// Request promotion to the contained (higher) group.
    Promote(AccelerationGroupId),
}

impl ModeratorEvent {
    /// Returns `true` for a promotion event.
    pub fn is_promotion(self) -> bool {
        matches!(self, ModeratorEvent::Promote(_))
    }
}

/// Client-side moderator bound to one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Moderator {
    policy: PromotionPolicy,
    profiler: Profiler,
    current_group: AccelerationGroupId,
    max_group: AccelerationGroupId,
    promotions: u32,
    device: DeviceProfile,
}

impl Moderator {
    /// Creates a moderator starting in the lowest acceleration group
    /// (`initial`), able to climb up to `max_group`.
    pub fn new(
        device: DeviceProfile,
        policy: PromotionPolicy,
        initial: AccelerationGroupId,
        max_group: AccelerationGroupId,
    ) -> Self {
        Self {
            policy,
            profiler: Profiler::default(),
            current_group: initial,
            max_group,
            promotions: 0,
            device,
        }
    }

    /// The acceleration group the device currently requests.
    pub fn current_group(&self) -> AccelerationGroupId {
        self.current_group
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u32 {
        self.promotions
    }

    /// The device profile this moderator runs on.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The promotion policy in force.
    pub fn policy(&self) -> PromotionPolicy {
        self.policy
    }

    /// Access to the response-time profiler (e.g. for reporting).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Observes a completed request for `method` with the given end-to-end
    /// response time and current battery level, and decides whether to
    /// request a higher acceleration group for subsequent requests.
    ///
    /// Promotion is sequential — one level at a time — as in §IV-A ("a user is
    /// gradually promoted in a sequential manner to a higher acceleration
    /// group").
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        method: &str,
        response_ms: f64,
        battery_percent: f64,
        rng: &mut R,
    ) -> ModeratorEvent {
        self.profiler.record(method, response_ms);
        if self.current_group >= self.max_group {
            return ModeratorEvent::Stay;
        }
        let should_promote = match self.policy {
            PromotionPolicy::Probabilistic { probability } => {
                rng.gen_bool(probability.clamp(0.0, 1.0))
            }
            PromotionPolicy::ResponseTimeThreshold { threshold_ms } => response_ms > threshold_ms,
            PromotionPolicy::Degradation { ratio } => self
                .profiler
                .profile(method)
                .map(|p| p.degradation_ratio() > ratio)
                .unwrap_or(false),
            PromotionPolicy::BatteryAware {
                battery_threshold_percent,
                latency_threshold_ms,
            } => battery_percent < battery_threshold_percent || response_ms > latency_threshold_ms,
            PromotionPolicy::Never => false,
        };
        if should_promote {
            self.current_group = self.current_group.promoted();
            self.promotions += 1;
            ModeratorEvent::Promote(self.current_group)
        } else {
            ModeratorEvent::Stay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moderator(policy: PromotionPolicy) -> Moderator {
        Moderator::new(
            DeviceProfile::for_class(DeviceClass::Legacy),
            policy,
            AccelerationGroupId(1),
            AccelerationGroupId(3),
        )
    }

    #[test]
    fn never_policy_never_promotes() {
        let mut m = moderator(PromotionPolicy::Never);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            assert_eq!(
                m.observe("minimax", 4000.0, 80.0, &mut rng),
                ModeratorEvent::Stay
            );
        }
        assert_eq!(m.current_group(), AccelerationGroupId(1));
        assert_eq!(m.promotions(), 0);
    }

    #[test]
    fn probabilistic_policy_eventually_promotes_to_max() {
        let mut m = moderator(PromotionPolicy::paper_default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut promotions = 0;
        for _ in 0..1000 {
            if m.observe("minimax", 1000.0, 80.0, &mut rng).is_promotion() {
                promotions += 1;
            }
        }
        // With p = 1/50 and 1000 observations, reaching the 2-promotion cap is
        // essentially certain.
        assert_eq!(promotions, 2);
        assert_eq!(m.current_group(), AccelerationGroupId(3));
        assert_eq!(m.promotions(), 2);
    }

    #[test]
    fn promotion_rate_matches_one_in_fifty() {
        // Without a max-group cap, the expected promotion count over n
        // observations is n/50.
        let mut m = Moderator::new(
            DeviceProfile::default(),
            PromotionPolicy::paper_default(),
            AccelerationGroupId(0),
            AccelerationGroupId(200),
        );
        let mut rng = StdRng::seed_from_u64(3);
        // Keep the observation count low enough that the u8 group ceiling
        // (255 promotions at most) is never reached.
        let n = 5_000;
        let mut promotions = 0;
        for _ in 0..n {
            if m.observe("m", 100.0, 50.0, &mut rng).is_promotion() {
                promotions += 1;
            }
        }
        let rate = promotions as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.008, "rate {rate}");
    }

    #[test]
    fn threshold_policy_promotes_on_slow_response() {
        let mut m = moderator(PromotionPolicy::ResponseTimeThreshold {
            threshold_ms: 500.0,
        });
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(m.observe("m", 300.0, 80.0, &mut rng), ModeratorEvent::Stay);
        assert_eq!(
            m.observe("m", 900.0, 80.0, &mut rng),
            ModeratorEvent::Promote(AccelerationGroupId(2))
        );
        // sequential: only one level per observation
        assert_eq!(m.current_group(), AccelerationGroupId(2));
    }

    #[test]
    fn promotion_stops_at_max_group() {
        let mut m = moderator(PromotionPolicy::ResponseTimeThreshold { threshold_ms: 1.0 });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            m.observe("m", 100.0, 80.0, &mut rng);
        }
        assert_eq!(m.current_group(), AccelerationGroupId(3));
        assert_eq!(m.promotions(), 2);
    }

    #[test]
    fn degradation_policy_reacts_to_worsening_times() {
        let mut m = moderator(PromotionPolicy::Degradation { ratio: 2.0 });
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert!(!m.observe("m", 200.0, 80.0, &mut rng).is_promotion());
        }
        let mut promoted = false;
        for _ in 0..10 {
            promoted |= m.observe("m", 900.0, 80.0, &mut rng).is_promotion();
        }
        assert!(
            promoted,
            "sustained 4.5x slowdown must trigger a degradation promotion"
        );
    }

    #[test]
    fn battery_aware_policy_promotes_on_low_battery() {
        let mut m = moderator(PromotionPolicy::BatteryAware {
            battery_threshold_percent: 20.0,
            latency_threshold_ms: 2_000.0,
        });
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!m.observe("m", 500.0, 80.0, &mut rng).is_promotion());
        assert!(m.observe("m", 500.0, 10.0, &mut rng).is_promotion());
    }

    #[test]
    fn profiler_records_observations() {
        let mut m = moderator(PromotionPolicy::Never);
        let mut rng = StdRng::seed_from_u64(8);
        m.observe("minimax", 100.0, 90.0, &mut rng);
        m.observe("minimax", 200.0, 90.0, &mut rng);
        assert_eq!(m.profiler().profile("minimax").unwrap().total_samples, 2);
        assert_eq!(m.profiler().profile("minimax").unwrap().mean_ms(), 150.0);
    }
}
