//! # mca-mobile — mobile device substrate
//!
//! The client side of the code-acceleration architecture:
//!
//! * [`device`] — device profiles (flagship, mid-range, legacy, wearable)
//!   with local execution speed and power draw; the paper motivates the whole
//!   system with the observation that "complex routines … can be computed
//!   easily by last generation smartphones but can be expensive to compute on
//!   older devices and wearables" (§I).
//! * [`battery`] — a simple energy store drained by computation, radio
//!   activity and idling; battery level is part of every trace record.
//! * [`moderator`] — the client-side moderator component that monitors
//!   response time and promotes the device to a higher acceleration group
//!   when quality degrades (§I, §VI-C-3). Includes the paper's static
//!   1/50 promotion probability as well as threshold-, degradation- and
//!   battery-aware policies (§VII-3 sketches the battery-aware variant).
//! * [`usage`] — a generative model of smartphone usage sessions calibrated
//!   to the paper's 3-month, 6-participant study: inter-arrival times between
//!   100 ms and 5000 ms during active periods, with inactive night periods
//!   removed (§VI-C-1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod device;
pub mod moderator;
pub mod usage;

pub use battery::Battery;
pub use device::{DeviceClass, DeviceProfile};
pub use moderator::{Moderator, ModeratorEvent, PromotionPolicy};
pub use usage::{InterArrivalSampler, ParticipantTrace, UsageStudy};
