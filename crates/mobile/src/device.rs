//! Mobile device profiles.
//!
//! Execution speed is expressed relative to the reference cloud core used by
//! the task work model (`mca-offload`): a speed factor of 0.2 means the
//! device takes five times as long as a level-1 cloud core for the same task.

use mca_offload::TaskSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Category of mobile hardware in the deployed application's install base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Last-generation smartphone: handles the heavy routines locally.
    Flagship,
    /// Mid-range smartphone.
    MidRange,
    /// Several-generations-old smartphone.
    Legacy,
    /// Wearable (watch-class) device — the weakest profile.
    Wearable,
}

impl DeviceClass {
    /// All device classes, strongest first.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Flagship,
        DeviceClass::MidRange,
        DeviceClass::Legacy,
        DeviceClass::Wearable,
    ];
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceClass::Flagship => "flagship",
            DeviceClass::MidRange => "mid-range",
            DeviceClass::Legacy => "legacy",
            DeviceClass::Wearable => "wearable",
        })
    }
}

/// Hardware profile of a mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The device class this profile describes.
    pub class: DeviceClass,
    /// Execution speed relative to a reference level-1 cloud core.
    pub speed_factor: f64,
    /// Battery capacity in milliwatt-hours.
    pub battery_capacity_mwh: f64,
    /// Power drawn while executing code locally, milliwatts.
    pub active_power_mw: f64,
    /// Power drawn while the cellular radio is transferring/waiting, mW.
    pub radio_power_mw: f64,
    /// Baseline idle power, milliwatts.
    pub idle_power_mw: f64,
}

impl DeviceProfile {
    /// Representative profile for a device class.
    pub fn for_class(class: DeviceClass) -> Self {
        match class {
            DeviceClass::Flagship => Self {
                class,
                speed_factor: 0.55,
                battery_capacity_mwh: 15_000.0,
                active_power_mw: 2_600.0,
                radio_power_mw: 1_300.0,
                idle_power_mw: 60.0,
            },
            DeviceClass::MidRange => Self {
                class,
                speed_factor: 0.30,
                battery_capacity_mwh: 11_000.0,
                active_power_mw: 2_100.0,
                radio_power_mw: 1_200.0,
                idle_power_mw: 55.0,
            },
            DeviceClass::Legacy => Self {
                class,
                speed_factor: 0.16,
                battery_capacity_mwh: 7_500.0,
                active_power_mw: 1_800.0,
                radio_power_mw: 1_100.0,
                idle_power_mw: 50.0,
            },
            DeviceClass::Wearable => Self {
                class,
                speed_factor: 0.06,
                battery_capacity_mwh: 1_500.0,
                active_power_mw: 700.0,
                radio_power_mw: 500.0,
                idle_power_mw: 15.0,
            },
        }
    }

    /// Time to execute `task` locally on this device, in milliseconds.
    pub fn local_execution_ms(&self, task: &TaskSpec) -> f64 {
        task.work_units() / self.speed_factor.max(1e-9)
    }

    /// Energy to execute `task` locally, in millijoules.
    pub fn local_execution_energy_mj(&self, task: &TaskSpec) -> f64 {
        self.active_power_mw * self.local_execution_ms(task) / 1000.0
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::for_class(DeviceClass::MidRange)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::TaskKind;

    #[test]
    fn stronger_classes_are_faster() {
        let task = TaskSpec::paper_static_minimax();
        let times: Vec<f64> = DeviceClass::ALL
            .iter()
            .map(|&c| DeviceProfile::for_class(c).local_execution_ms(&task))
            .collect();
        // ALL is ordered strongest first, so times must be increasing.
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn minimax_takes_seconds_on_weak_devices() {
        // The paper's Fig. 9b shows ≈2.5 s perceived response time for a
        // non-promoted user; local execution on legacy hardware should be in
        // the same order of magnitude.
        let task = TaskSpec::paper_static_minimax();
        let legacy = DeviceProfile::for_class(DeviceClass::Legacy).local_execution_ms(&task);
        assert!(
            legacy > 1_000.0 && legacy < 10_000.0,
            "legacy minimax {legacy} ms"
        );
        let wearable = DeviceProfile::for_class(DeviceClass::Wearable).local_execution_ms(&task);
        assert!(wearable > legacy);
    }

    #[test]
    fn all_devices_slower_than_reference_cloud_core() {
        let task = TaskSpec::paper_static_minimax();
        for class in DeviceClass::ALL {
            let p = DeviceProfile::for_class(class);
            assert!(p.speed_factor < 1.0);
            assert!(p.local_execution_ms(&task) > task.work_units());
        }
    }

    #[test]
    fn energy_scales_with_time_and_power() {
        let task = TaskSpec::new(TaskKind::Minimax, 8);
        let p = DeviceProfile::for_class(DeviceClass::MidRange);
        let expected = p.active_power_mw * p.local_execution_ms(&task) / 1000.0;
        assert!((p.local_execution_energy_mj(&task) - expected).abs() < 1e-9);
    }

    #[test]
    fn default_profile_is_midrange() {
        assert_eq!(DeviceProfile::default().class, DeviceClass::MidRange);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::Wearable.to_string(), "wearable");
        assert_eq!(DeviceClass::MidRange.to_string(), "mid-range");
    }
}
