//! Ablation benchmarks for the design decisions listed in DESIGN.md §5:
//! prediction strategy, distance metric, allocation policy and the ILP solver
//! itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_core::{
    cross_validate, AccelerationGroups, AllocationPolicy, DistanceKind, PredictionStrategy,
    ResourceAllocator, SlotHistory, TimeSlot, WorkloadForecast,
};
use mca_lp::{Problem, Sense, VarKind};
use mca_offload::{AccelerationGroupId, UserId};

fn synthetic_history(hours: usize) -> SlotHistory {
    let mut history = SlotHistory::hourly();
    for h in 0..hours {
        let ramp = [4u32, 8, 14, 20, 26, 20, 14, 8][h % 8];
        let mut pairs = Vec::new();
        for u in 0..(12 + ramp) {
            pairs.push((AccelerationGroupId(1), UserId(u)));
        }
        for u in 0..(3 + ramp / 4) {
            pairs.push((AccelerationGroupId(2), UserId(1_000 + u)));
        }
        for u in 0..(1 + ramp / 8) {
            pairs.push((AccelerationGroupId(3), UserId(2_000 + u)));
        }
        history.push(TimeSlot::from_assignments(h, pairs));
    }
    history
}

fn ablation_prediction_strategy(c: &mut Criterion) {
    let history = synthetic_history(24);
    let groups = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];
    let mut group = c.benchmark_group("ablation_prediction_strategy");
    group.sample_size(20);
    for (name, strategy) in [
        ("nearest_slot", PredictionStrategy::NearestSlot),
        (
            "successor_of_nearest",
            PredictionStrategy::SuccessorOfNearest,
        ),
        ("last_value", PredictionStrategy::LastValue),
        ("mean_of_history", PredictionStrategy::MeanOfHistory),
    ] {
        group.bench_with_input(
            BenchmarkId::new("cross_validate", name),
            &strategy,
            |b, &strategy| {
                b.iter(|| cross_validate(&history, &groups, strategy, DistanceKind::SetEdit, 8))
            },
        );
    }
    group.finish();
}

fn ablation_distance_metric(c: &mut Criterion) {
    let history = synthetic_history(24);
    let groups = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];
    let mut group = c.benchmark_group("ablation_distance_metric");
    group.sample_size(20);
    for (name, distance) in [
        ("set_edit", DistanceKind::SetEdit),
        ("levenshtein", DistanceKind::Levenshtein),
        ("count_difference", DistanceKind::CountDifference),
    ] {
        group.bench_with_input(
            BenchmarkId::new("cross_validate", name),
            &distance,
            |b, &distance| {
                b.iter(|| {
                    cross_validate(
                        &history,
                        &groups,
                        PredictionStrategy::NearestSlot,
                        distance,
                        8,
                    )
                })
            },
        );
    }
    group.finish();
}

fn ablation_allocation_policy(c: &mut Criterion) {
    let forecast = WorkloadForecast {
        per_group: vec![
            (AccelerationGroupId(1), 180),
            (AccelerationGroupId(2), 300),
            (AccelerationGroupId(3), 90),
        ],
        matched_slot: None,
    };
    let mut group = c.benchmark_group("ablation_allocation_policy");
    group.sample_size(30);
    for (name, policy) in [
        ("ilp_exact", AllocationPolicy::IlpExact),
        ("greedy_cheapest", AllocationPolicy::GreedyCheapest),
        ("over_provision", AllocationPolicy::OverProvision),
    ] {
        let allocator =
            ResourceAllocator::with_policy(AccelerationGroups::paper_three_groups(), policy);
        group.bench_with_input(
            BenchmarkId::new("allocate", name),
            &allocator,
            |b, allocator| b.iter(|| allocator.allocate(&forecast).expect("feasible")),
        );
    }
    group.finish();
}

fn ablation_ilp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ilp_solver");
    group.sample_size(30);
    for n_types in [3usize, 6, 12] {
        group.bench_with_input(
            BenchmarkId::new("covering_ilp", n_types),
            &n_types,
            |b, &n| {
                b.iter(|| {
                    let mut p = Problem::minimize();
                    let vars: Vec<_> = (0..n)
                        .map(|i| {
                            p.add_var(
                                format!("x{i}"),
                                VarKind::Integer,
                                0.0,
                                Some(20.0),
                                0.01 * (i + 1) as f64,
                            )
                        })
                        .collect();
                    let caps: Vec<(mca_lp::VarId, f64)> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (*v, 20.0 * (i + 1) as f64))
                        .collect();
                    p.add_constraint("cover", &caps, Sense::Ge, 700.0);
                    let all: Vec<(mca_lp::VarId, f64)> = vars.iter().map(|v| (*v, 1.0)).collect();
                    p.add_constraint("cap", &all, Sense::Le, 20.0);
                    p.solve().expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablation_prediction_strategy,
    ablation_distance_metric,
    ablation_allocation_policy,
    ablation_ilp_solver
);
criterion_main!(ablations);
