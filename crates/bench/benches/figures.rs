//! Criterion benchmarks: one group per paper figure (scaled-down parameters
//! so a full `cargo bench` completes in minutes) plus ablation groups for the
//! design decisions called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_bench::DEFAULT_SEED;

fn fig4_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_characterization");
    group.sample_size(10);
    group.bench_function("six_instances_short", |b| {
        b.iter(|| mca_bench::fig4::run(5_000.0, DEFAULT_SEED))
    });
    group.finish();
}

fn fig5_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_levels");
    group.sample_size(10);
    group.bench_function("static_minimax_sweep", |b| {
        b.iter(|| mca_bench::fig5::run(5_000.0, DEFAULT_SEED))
    });
    group.finish();
}

fn fig6_anomaly(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_anomaly");
    group.sample_size(10);
    group.bench_function("nano_vs_micro", |b| {
        b.iter(|| mca_bench::fig6::run(5_000.0, DEFAULT_SEED))
    });
    group.finish();
}

fn fig7_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_components");
    group.sample_size(10);
    group.bench_function("timing_decomposition", |b| {
        b.iter(|| mca_bench::fig7::run(30, DEFAULT_SEED))
    });
    group.finish();
}

fn fig8_routing_and_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_routing_and_saturation");
    group.sample_size(10);
    group.bench_function("doubling_rate_sweep", |b| {
        b.iter(|| mca_bench::fig8::run(30, 5_000.0, DEFAULT_SEED))
    });
    group.finish();
}

fn fig9_perception(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_perception");
    group.sample_size(10);
    group.bench_function("scaled_8h_experiment", |b| {
        b.iter(|| mca_bench::fig9::run(20, 1_800_000.0, 400, DEFAULT_SEED))
    });
    group.finish();
}

fn fig10_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_prediction");
    group.sample_size(10);
    group.bench_function("scaled_16h_study", |b| {
        b.iter(|| mca_bench::fig10::run(20, 1_800_000.0, 400, 12, DEFAULT_SEED))
    });
    group.finish();
}

fn fig11_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_latency");
    group.sample_size(10);
    for scale in [2_000usize, 500] {
        group.bench_with_input(
            BenchmarkId::new("netradar_campaign", scale),
            &scale,
            |b, &scale| b.iter(|| mca_bench::fig11::run(scale, DEFAULT_SEED)),
        );
    }
    group.finish();
}

criterion_group!(
    figures,
    fig4_characterization,
    fig5_levels,
    fig6_anomaly,
    fig7_components,
    fig8_routing_and_saturation,
    fig9_perception,
    fig10_prediction,
    fig11_latency
);
criterion_main!(figures);
