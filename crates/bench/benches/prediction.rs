//! Criterion benchmark for the nearest-slot workload predictor: the pruned,
//! allocation-free search versus the retained naive baseline (full scan with
//! per-candidate set construction). The `bench_prediction` binary runs the
//! full 5,000-slot acceptance configuration and emits
//! `BENCH_prediction.json`; this bench covers smaller sizes for quick
//! regression checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mca_bench::prediction::{current_probe_slot, synthetic_history, PredictionWorkload};
use mca_core::WorkloadPredictor;

fn bench_nearest_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("prediction_nearest_slot");
    group.sample_size(10);
    for &slots in &[500usize, 2_000] {
        let workload = PredictionWorkload {
            slots,
            groups: 3,
            users_per_group: 200,
        };
        let history = synthetic_history(&workload);
        let probe = current_probe_slot(&workload);
        let mut predictor = WorkloadPredictor::new(workload.group_ids(), history.slot_length_ms);
        predictor.set_history(history);
        group.bench_with_input(BenchmarkId::new("pruned", slots), &predictor, |b, p| {
            b.iter(|| p.predict(&probe).expect("non-empty history"))
        });
        group.bench_with_input(BenchmarkId::new("naive", slots), &predictor, |b, p| {
            b.iter(|| p.predict_naive(&probe).expect("non-empty history"))
        });
    }
    group.finish();
}

criterion_group!(prediction, bench_nearest_slot);
criterion_main!(prediction);
