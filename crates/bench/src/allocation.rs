//! Performance harness for the allocation solver: the sparse revised
//! simplex with warm-started branch-and-bound versus the cold dense
//! tableau, on the paper's allocation ILP swept across instance-type
//! catalogue sizes.
//!
//! Both backends solve the **identical** sequence of forecasts through the
//! same [`ResourceAllocator`] and the same branch-and-bound search; they
//! differ exactly where the architectures differ:
//!
//! * the **dense baseline** ([`mca_lp::LpBackend::DenseTableau`]) rebuilds
//!   a full tableau at every node — every variable bound becomes a row, so
//!   the tableau grows with the instance-type count — and solves every node
//!   cold through phase 1;
//! * the **revised path** ([`mca_lp::LpBackend::RevisedWarmStart`]) builds
//!   one sparse row representation per solve, keeps the basis at the size
//!   of the constraint system, and re-enters every child node from its
//!   parent's optimal basis through the dual simplex (no phase 1).
//!
//! Alongside the timing comparison the harness asserts that **every**
//! allocation the revised path produces is identical to the dense path's —
//! same instances, same cost, same capacities — so the speedup can never
//! come from answering a different question. `cargo run --release -p
//! mca-bench --bin bench_allocation` regenerates `BENCH_allocation.json`
//! at the repository root.

use mca_cloudsim::InstanceType;
use mca_core::{AccelerationGroups, AllocationPolicy, ResourceAllocator, WorkloadForecast};
use mca_lp::LpBackend;
use mca_offload::AccelerationGroupId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the allocation benchmark sweep.
#[derive(Debug, Clone)]
pub struct AllocationWorkload {
    /// Acceleration-group counts to sweep; each group carries the 6-type
    /// distinct-price catalogue, so the decision-variable count is
    /// `6 × groups`.
    pub group_counts: Vec<usize>,
    /// Forecasts solved per sweep point (each forecast is one ILP per
    /// backend).
    pub forecasts: usize,
}

impl AllocationWorkload {
    /// The acceptance-bar sweep: 6 → 48 instance-type variables, 48
    /// forecasts per point.
    pub fn headline() -> Self {
        Self {
            group_counts: vec![1, 2, 4, 8],
            forecasts: 48,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            group_counts: vec![1, 4, 8],
            forecasts: 10,
        }
    }
}

/// The instance types with pairwise-distinct price structure. `t2.micro`
/// (2× the nano price exactly) and `t2.medium` (2× the small price exactly)
/// are excluded: exact price multiples make equal-cost instance mixes
/// ubiquitous, which turns the ILP's optimum into a plateau — the solve
/// then measures tie-plateau search rather than simplex work, and the
/// optimal *mix* is no longer unique.
pub const BENCH_TYPES: [InstanceType; 6] = [
    InstanceType::T2Nano,
    InstanceType::T2Small,
    InstanceType::T2Large,
    InstanceType::M4_4XLarge,
    InstanceType::M4_10XLarge,
    InstanceType::C4_8XLarge,
];

/// A synthetic catalogue of `groups` acceleration groups, each offering the
/// six distinct-price instance types of [`BENCH_TYPES`] — the many-types
/// regime the revised simplex is built for (the paper's own three groups
/// pin one type each).
pub fn catalogue(groups: usize) -> AccelerationGroups {
    assert!((1..=8).contains(&groups), "group ids are u8 and small");
    let assignments: Vec<(AccelerationGroupId, Vec<InstanceType>)> = (0..groups)
        .map(|g| (AccelerationGroupId(g as u8 + 1), BENCH_TYPES.to_vec()))
        .collect();
    AccelerationGroups::from_assignments(&assignments, 500.0, 65.0)
}

/// One sweep point of the comparison.
#[derive(Debug, Clone)]
pub struct AllocationRow {
    /// Acceleration groups at this point.
    pub groups: usize,
    /// Decision variables: (group, instance type) pairs.
    pub instance_types: usize,
    /// Forecasts solved.
    pub forecasts: usize,
    /// Mean wall-clock time of one dense cold solve, ms.
    pub dense_ms: f64,
    /// Mean wall-clock time of one revised warm-started solve, ms.
    pub revised_ms: f64,
    /// Whether every revised allocation equalled the dense allocation.
    pub identical: bool,
    /// Mean branch-and-bound nodes per solve (identical across backends by
    /// construction when the allocations agree; reported from the revised
    /// run).
    pub nodes_mean: f64,
    /// Mean simplex pivots per dense solve.
    pub dense_pivots_mean: f64,
    /// Mean simplex pivots per revised solve.
    pub revised_pivots_mean: f64,
    /// Fraction of non-root nodes that re-entered from their parent basis
    /// without phase 1.
    pub phase1_skip_rate: f64,
}

impl AllocationRow {
    /// Dense time over revised time.
    pub fn speedup(&self) -> f64 {
        self.dense_ms / self.revised_ms
    }
}

/// The full sweep report.
#[derive(Debug, Clone)]
pub struct AllocationBenchReport {
    /// One row per swept group count.
    pub rows: Vec<AllocationRow>,
}

impl AllocationBenchReport {
    /// `true` when every row's allocations were bit-identical across
    /// backends.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// The smallest speedup among rows with at least `min_vars` decision
    /// variables (`None` when the sweep has no such row).
    pub fn min_speedup_at(&self, min_vars: usize) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.instance_types >= min_vars)
            .map(AllocationRow::speedup)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let mut out = String::from(
            "{\n  \"benchmark\": \"allocation_solver\",\n  \
             \"baseline\": \"dense_tableau_cold\",\n  \
             \"candidate\": \"revised_simplex_warm_started\",\n  \"rows\": [\n",
        );
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"groups\": {}, \"instance_types\": {}, \"forecasts\": {}, \
                 \"dense_ms_per_solve\": {:.4}, \"revised_ms_per_solve\": {:.4}, \
                 \"speedup\": {:.2}, \"allocations_identical\": {}, \
                 \"nodes_mean\": {:.1}, \"dense_pivots_mean\": {:.1}, \
                 \"revised_pivots_mean\": {:.1}, \"phase1_skip_rate\": {:.3}}}{}\n",
                r.groups,
                r.instance_types,
                r.forecasts,
                r.dense_ms,
                r.revised_ms,
                r.speedup(),
                r.identical,
                r.nodes_mean,
                r.dense_pivots_mean,
                r.revised_pivots_mean,
                r.phase1_skip_rate,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Largest per-group forecast load, in concurrent users — the scale of the
/// fleet benchmark's heavy tenants. Loads of this order need double-digit
/// instance mixes (and brush against the account cap), while staying far
/// from the degenerate regime where tens of thousands of users turn every
/// solve into a cap-bound knapsack over interchangeable giant instances.
pub const MAX_GROUP_LOAD: usize = 2_000;

/// Deterministic forecast sequence for one sweep point.
fn forecast_sequence(
    count: usize,
    groups: &AccelerationGroups,
    seed: u64,
) -> Vec<WorkloadForecast> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<AccelerationGroupId> = groups.ids();
    (0..count)
        .map(|_| WorkloadForecast {
            per_group: ids
                .iter()
                .map(|&id| (id, rng.gen_range(0..MAX_GROUP_LOAD + 1)))
                .collect(),
            matched_slot: None,
        })
        .collect()
}

/// Runs the sweep: for every group count, solves the same forecasts with
/// the dense cold backend and the revised warm-started backend, timing both
/// and checking the allocations are identical.
pub fn run(workload: &AllocationWorkload, seed: u64) -> AllocationBenchReport {
    let mut rows = Vec::with_capacity(workload.group_counts.len());
    for &group_count in &workload.group_counts {
        let groups = catalogue(group_count);
        // the paper's per-operator cap (CC = 20), scaled with the catalogue:
        // roomy enough that the per-group coverings stay decoupled (a
        // *tight* cap makes equal-cost allocations interchangeable across
        // same-catalogue groups, turning the optimum into a plateau)
        let account_cap = 20 * group_count;
        let revised = ResourceAllocator::with_policy(groups.clone(), AllocationPolicy::IlpExact)
            .with_account_cap(account_cap);
        let dense = ResourceAllocator::with_policy(groups.clone(), AllocationPolicy::IlpExact)
            .with_account_cap(account_cap)
            .with_lp_backend(LpBackend::DenseTableau);
        let forecasts = forecast_sequence(workload.forecasts, &groups, seed ^ (group_count as u64));

        // one untimed warmup per backend (first-touch allocator noise)
        let _ = revised.allocate(&forecasts[0]);
        let _ = dense.allocate(&forecasts[0]);

        let mut dense_ms = 0.0f64;
        let mut revised_ms = 0.0f64;
        let mut identical = true;
        let mut nodes = 0usize;
        let mut dense_pivots = 0usize;
        let mut revised_pivots = 0usize;
        let mut skips = 0usize;
        let mut non_root_nodes = 0usize;
        for f in &forecasts {
            let start = Instant::now();
            let a = dense.allocate(f).expect("bench forecasts are feasible");
            dense_ms += start.elapsed().as_secs_f64() * 1_000.0;

            let start = Instant::now();
            let b = revised.allocate(f).expect("bench forecasts are feasible");
            revised_ms += start.elapsed().as_secs_f64() * 1_000.0;

            if a != b {
                identical = false;
            }
            nodes += b.stats.nodes;
            dense_pivots += a.stats.pivots;
            revised_pivots += b.stats.pivots;
            skips += b.stats.phase1_skips;
            non_root_nodes += b.stats.nodes.saturating_sub(1);
        }
        let n = workload.forecasts as f64;
        rows.push(AllocationRow {
            groups: group_count,
            instance_types: BENCH_TYPES.len() * group_count,
            forecasts: workload.forecasts,
            dense_ms: dense_ms / n,
            revised_ms: revised_ms / n,
            identical,
            nodes_mean: nodes as f64 / n,
            dense_pivots_mean: dense_pivots as f64 / n,
            revised_pivots_mean: revised_pivots as f64 / n,
            phase1_skip_rate: if non_root_nodes == 0 {
                0.0
            } else {
                skips as f64 / non_root_nodes as f64
            },
        });
    }
    AllocationBenchReport { rows }
}

/// Prints the report as an aligned table.
pub fn print(report: &AllocationBenchReport) {
    println!("allocation ILP: dense cold tableau vs revised simplex + warm-started B&B");
    println!(
        "  {:>6} {:>6} {:>12} {:>12} {:>9} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "types",
        "groups",
        "dense ms",
        "revised ms",
        "speedup",
        "identical",
        "nodes",
        "piv(d)",
        "piv(r)",
        "p1 skips"
    );
    for r in &report.rows {
        println!(
            "  {:>6} {:>6} {:>12.4} {:>12.4} {:>8.1}x {:>10} {:>8.1} {:>8.1} {:>8.1} {:>9.1}%",
            r.instance_types,
            r.groups,
            r.dense_ms,
            r.revised_ms,
            r.speedup(),
            r.identical,
            r.nodes_mean,
            r.dense_pivots_mean,
            r.revised_pivots_mean,
            100.0 * r.phase1_skip_rate,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_identical_allocations() {
        let workload = AllocationWorkload {
            group_counts: vec![1, 2],
            forecasts: 4,
        };
        let report = run(&workload, crate::DEFAULT_SEED);
        assert_eq!(report.rows.len(), 2);
        assert!(report.all_identical());
        assert!(report.rows.iter().all(|r| r.dense_ms > 0.0));
        assert_eq!(report.rows[1].instance_types, 12);
        let json = report.to_json();
        assert!(json.contains("\"allocations_identical\": true"));
        assert!(json.contains("\"instance_types\": 12"));
    }

    #[test]
    fn catalogue_sizes_scale_with_groups() {
        let c = catalogue(4);
        assert_eq!(c.len(), 4);
        assert!(c
            .groups()
            .iter()
            .all(|g| g.instance_types.len() == BENCH_TYPES.len()));
    }
}
