//! Small table-printing helpers shared by the figure binaries.

/// Prints a header row followed by a separator.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join("\t"));
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Prints one data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(4.6789), "4.7");
        assert_eq!(f3(2.0), "2.000");
    }
}
