//! Performance harness for the nearest-slot workload predictor: the pruned,
//! allocation-free search of `mca-core` versus the retained naive baseline
//! (full scan, per-candidate set construction — the seed's cost model).
//!
//! The headline configuration follows the acceptance bar of the time-slot
//! engine rework: a 5,000-slot × 3-group × 200-users-per-group synthetic
//! history, on which the pruned search must be at least 5× faster than the
//! naive scan. `cargo run --release -p mca-bench --bin bench_prediction`
//! regenerates `BENCH_prediction.json` at the repository root.
//!
//! A second harness ([`run_parallel`]) sweeps the chunked **parallel**
//! knowledge-base scan against the sequential best-first scan on a huge
//! single-tenant history (100k slots — the CloneCloud-style regime), over
//! thread counts 1/2/4/8, asserting every configuration returns the
//! bit-identical forecast (the naive scan included). The report records the
//! machine's `available_parallelism` so the acceptance gate can judge the
//! best thread count the runner can actually exploit.
//!
//! A third harness ([`run_index`]) scales the history from 100k to 1M slots
//! and times the vantage-point **metric index** against the pruned linear
//! scan at every point, asserting the serial, chunked and indexed paths all
//! return the bit-identical forecast. The acceptance bar: ≥5× over the
//! pruned scan at 1M slots and sub-linear growth (10× more history must
//! cost the indexed path <3× more time).

use mca_core::{IndexPolicy, ParallelismPolicy, SlotHistory, TimeSlot, WorkloadPredictor};
use mca_offload::{AccelerationGroupId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the synthetic prediction workload.
#[derive(Debug, Clone, Copy)]
pub struct PredictionWorkload {
    /// Number of historical slots (`H`).
    pub slots: usize,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
}

impl PredictionWorkload {
    /// The acceptance-bar configuration: 5,000 slots × 3 groups × 200 users.
    pub fn headline() -> Self {
        Self {
            slots: 5_000,
            groups: 3,
            users_per_group: 200,
        }
    }

    /// The acceleration-group universe of this workload.
    pub fn group_ids(&self) -> Vec<AccelerationGroupId> {
        (1..=self.groups as u8).map(AccelerationGroupId).collect()
    }
}

/// Builds a drifting synthetic history: each group's user population is a
/// contiguous id window that slides slowly over time while the load ramps
/// diurnally, so consecutive slots share most users (as the paper's traces
/// do) and distances between far-apart slots are large — the regime the
/// signature pruning exploits.
pub fn synthetic_history(workload: &PredictionWorkload) -> SlotHistory {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED);
    let mut history = SlotHistory::hourly();
    for hour in 0..workload.slots {
        history.push(synthetic_slot(workload, hour, &mut rng));
    }
    history
}

/// The probe used as the "current" slot: a fresh slot resembling (but not
/// equal to) the most recent history entries.
pub fn current_probe_slot(workload: &PredictionWorkload) -> TimeSlot {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED ^ 0x5bd1e995);
    synthetic_slot(workload, workload.slots, &mut rng)
}

fn synthetic_slot(workload: &PredictionWorkload, hour: usize, rng: &mut StdRng) -> TimeSlot {
    let mut slot = TimeSlot::new(hour);
    for (g, group) in workload.group_ids().into_iter().enumerate() {
        // diurnal ramp: load swings ±25% around nominal with period 24
        let phase = (hour % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let ramp = 1.0 + 0.25 * phase.sin();
        let load = ((workload.users_per_group as f64 * ramp).round() as usize).max(1);
        // the user-id window drifts by ~2% of the population per slot
        let drift = hour * (workload.users_per_group / 50).max(1);
        let base = (g * 1_000_000 + drift) as u32;
        for u in 0..load as u32 {
            // small churn: a few ids are replaced by out-of-window users
            let id = if rng.gen_bool(0.02) {
                base + u + rng.gen_range(1u32..50)
            } else {
                base + u
            };
            slot.assign(group, UserId(id));
        }
    }
    slot
}

/// Measurements of one pruned-versus-naive comparison.
#[derive(Debug, Clone)]
pub struct PredictionBenchReport {
    /// The workload shape measured.
    pub workload: PredictionWorkload,
    /// Number of predictions timed per implementation.
    pub rounds: usize,
    /// Mean wall-clock time of one naive prediction, milliseconds.
    pub naive_ms: f64,
    /// Mean wall-clock time of one pruned prediction, milliseconds.
    pub pruned_ms: f64,
}

impl PredictionBenchReport {
    /// Naive time over pruned time.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.pruned_ms
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"history_slots\": {},\n  \
             \"groups\": {},\n  \"users_per_group\": {},\n  \"rounds\": {},\n  \
             \"naive_ms_per_prediction\": {:.4},\n  \"pruned_ms_per_prediction\": {:.4},\n  \
             \"speedup\": {:.2}\n}}",
            self.workload.slots,
            self.workload.groups,
            self.workload.users_per_group,
            self.rounds,
            self.naive_ms,
            self.pruned_ms,
            self.speedup(),
        )
    }
}

/// Times `rounds` naive and pruned `NearestSlot` predictions over the same
/// predictor state and probe, and checks both return identical forecasts.
pub fn run(workload: &PredictionWorkload, rounds: usize) -> PredictionBenchReport {
    assert!(rounds > 0, "at least one timed round");
    let history = synthetic_history(workload);
    let probe = current_probe_slot(workload);
    let mut predictor = WorkloadPredictor::new(workload.group_ids(), history.slot_length_ms);
    predictor.set_history(history);

    // correctness first: the pruned search must reproduce the naive forecast
    let fast = predictor.predict(&probe).expect("non-empty history");
    let naive = predictor.predict_naive(&probe).expect("non-empty history");
    assert_eq!(
        fast, naive,
        "pruned search diverged from the naive reference"
    );

    let naive_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict_naive(&probe).expect("non-empty history"));
    });
    let pruned_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
    });
    PredictionBenchReport {
        workload: *workload,
        rounds,
        naive_ms,
        pruned_ms,
    }
}

/// Shape of the parallel-scan sweep: a huge single-tenant history scanned
/// by one predictor, serial versus chunked across a rayon pool.
#[derive(Debug, Clone)]
pub struct ParallelScanWorkload {
    /// Number of historical slots (the CloneCloud-style regime: 100k+).
    pub slots: usize,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
    /// Thread counts swept (each with a matching chunk count and pool).
    pub thread_counts: Vec<usize>,
}

impl ParallelScanWorkload {
    /// The acceptance-bar sweep: a 100,000-slot history, threads 1/2/4/8,
    /// ≥2× over the sequential scan required at 4 threads.
    pub fn headline() -> Self {
        Self {
            slots: 100_000,
            groups: 3,
            users_per_group: 48,
            thread_counts: vec![1, 2, 4, 8],
        }
    }

    /// The CI smoke shape: small enough to run in seconds, large enough to
    /// clear the fan-out threshold so the chunked path genuinely runs.
    pub fn smoke() -> Self {
        Self {
            slots: 6_000,
            groups: 3,
            users_per_group: 12,
            thread_counts: vec![1, 2, 4],
        }
    }

    fn as_prediction_workload(&self) -> PredictionWorkload {
        PredictionWorkload {
            slots: self.slots,
            groups: self.groups,
            users_per_group: self.users_per_group,
        }
    }
}

/// One point of the parallel sweep.
#[derive(Debug, Clone, Copy)]
pub struct ParallelScanMeasurement {
    /// Chunk count and pool width of this configuration.
    pub threads: usize,
    /// Mean wall-clock time of one prediction, milliseconds.
    pub ms_per_prediction: f64,
}

/// Measurements of one serial-versus-parallel sweep.
#[derive(Debug, Clone)]
pub struct ParallelScanReport {
    /// The workload swept.
    pub workload: ParallelScanWorkload,
    /// Number of predictions timed per configuration.
    pub rounds: usize,
    /// Mean wall-clock time of one sequential (best-first) prediction, ms.
    pub serial_ms: f64,
    /// One measurement per swept thread count.
    pub sweep: Vec<ParallelScanMeasurement>,
    /// Whether every configuration (and the naive full scan) returned the
    /// bit-identical forecast.
    pub forecasts_identical: bool,
    /// `std::thread::available_parallelism()` of the machine that produced
    /// the report. Speedup gates must only judge thread counts the runner
    /// can actually exploit — a single-core CI container legitimately shows
    /// ~1× at every width.
    pub available_parallelism: usize,
}

impl ParallelScanReport {
    /// Serial time over the parallel time at `threads`, when measured.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.sweep
            .iter()
            .find(|m| m.threads == threads)
            .map(|m| self.serial_ms / m.ms_per_prediction)
    }

    /// The best speedup among sweep entries whose thread count does not
    /// exceed the runner's `available_parallelism`, with the thread count
    /// that achieved it. `None` when no swept width fits the machine.
    pub fn best_feasible_speedup(&self) -> Option<(usize, f64)> {
        self.sweep
            .iter()
            .filter(|m| m.threads <= self.available_parallelism)
            .map(|m| (m.threads, self.serial_ms / m.ms_per_prediction))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"threads\": {}, \"ms_per_prediction\": {:.4}, \"speedup\": {:.2} }}",
                    m.threads,
                    m.ms_per_prediction,
                    self.serial_ms / m.ms_per_prediction,
                )
            })
            .collect();
        format!(
            "{{\n  \"history_slots\": {},\n  \"groups\": {},\n  \"users_per_group\": {},\n  \
             \"rounds\": {},\n  \"available_parallelism\": {},\n  \
             \"serial_ms_per_prediction\": {:.4},\n  \
             \"forecasts_identical\": {},\n  \"sweep\": [\n{}\n  ]\n}}",
            self.workload.slots,
            self.workload.groups,
            self.workload.users_per_group,
            self.rounds,
            self.available_parallelism,
            self.serial_ms,
            self.forecasts_identical,
            sweep.join(",\n"),
        )
    }
}

/// `std::thread::available_parallelism()` with a single-core fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sweeps the chunked parallel scan against the sequential scan on one huge
/// history. Every configuration runs inside a rayon pool of exactly
/// `threads` workers with a matching chunk count; every forecast (including
/// the naive full scan's, checked once) must be bit-identical to the
/// sequential scan's.
pub fn run_parallel(workload: &ParallelScanWorkload, rounds: usize) -> ParallelScanReport {
    assert!(rounds > 0, "at least one timed round");
    let inner = workload.as_prediction_workload();
    let history = synthetic_history(&inner);
    let probe = current_probe_slot(&inner);
    let mut predictor = WorkloadPredictor::new(inner.group_ids(), history.slot_length_ms);
    predictor.set_history(history);

    let reference = predictor.predict(&probe).expect("non-empty history");
    let mut forecasts_identical =
        reference == predictor.predict_naive(&probe).expect("non-empty history");

    let serial_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
    });

    let mut sweep = Vec::with_capacity(workload.thread_counts.len());
    for &threads in &workload.thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        // force the fan-out threshold down so the sweep measures the chunked
        // path even on custom sub-threshold history shapes — without this a
        // <4096-slot workload would silently re-time the serial scan under a
        // "chunked" label
        predictor.set_parallelism(ParallelismPolicy::parallel(threads).with_min_parallel_slots(1));
        let forecast = pool.install(|| predictor.predict(&probe).expect("non-empty history"));
        forecasts_identical &= forecast == reference;
        let ms_per_prediction = time_ms(rounds, || {
            pool.install(|| {
                std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
            });
        });
        sweep.push(ParallelScanMeasurement {
            threads,
            ms_per_prediction,
        });
    }
    predictor.set_parallelism(ParallelismPolicy::serial());

    ParallelScanReport {
        workload: workload.clone(),
        rounds,
        serial_ms,
        sweep,
        forecasts_identical,
        available_parallelism: available_parallelism(),
    }
}

/// Prints the parallel sweep as an aligned table.
pub fn print_parallel(report: &ParallelScanReport) {
    println!(
        "chunked parallel scan over {} slots x {} groups x {} users/group ({} rounds)",
        report.workload.slots,
        report.workload.groups,
        report.workload.users_per_group,
        report.rounds,
    );
    println!(
        "  {:<28} {:>12} {:>10}",
        "configuration", "ms/predict", "speedup"
    );
    println!(
        "  {:<28} {:>12.3} {:>10}",
        "serial best-first scan", report.serial_ms, "1.0x"
    );
    for m in &report.sweep {
        println!(
            "  {:<28} {:>12.3} {:>9.1}x",
            format!("chunked, {} thread(s)", m.threads),
            m.ms_per_prediction,
            report.serial_ms / m.ms_per_prediction,
        );
    }
    println!(
        "  forecasts identical across every configuration: {}",
        report.forecasts_identical
    );
    println!(
        "  available parallelism on this machine: {}",
        report.available_parallelism
    );
}

/// Shape of the metric-index scaling sweep: one predictor, histories of
/// growing size, pruned linear scan versus vantage-point index at each.
#[derive(Debug, Clone)]
pub struct IndexScanWorkload {
    /// History sizes swept, ascending (the history grows incrementally, so
    /// every size extends the previous one).
    pub sizes: Vec<usize>,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
    /// Pivot count of the vantage-point index.
    pub pivots: usize,
    /// Largest size at which the naive full scan is also checked for
    /// forecast identity (it is infeasible to run at 1M slots).
    pub verify_naive_up_to: usize,
}

impl IndexScanWorkload {
    /// The acceptance-bar sweep: 100k → 1M slots; the index must beat the
    /// pruned linear scan ≥5× at 1M, and 10× more history must cost it <3×
    /// more time.
    pub fn headline() -> Self {
        Self {
            sizes: vec![100_000, 300_000, 1_000_000],
            groups: 3,
            users_per_group: 48,
            pivots: IndexPolicy::DEFAULT_PIVOTS,
            verify_naive_up_to: 100_000,
        }
    }

    /// The CI smoke shape: one small size, agreement gating only.
    pub fn smoke() -> Self {
        Self {
            sizes: vec![6_000],
            groups: 3,
            users_per_group: 12,
            pivots: IndexPolicy::DEFAULT_PIVOTS,
            verify_naive_up_to: 6_000,
        }
    }
}

/// One point of the index scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct IndexScanPoint {
    /// History size at this point.
    pub slots: usize,
    /// Mean wall-clock time of one pruned linear-scan prediction, ms.
    pub pruned_ms: f64,
    /// Mean wall-clock time of one indexed prediction, ms (index build
    /// excluded — it is amortized over the history's lifetime).
    pub indexed_ms: f64,
    /// Whether the serial, chunked and indexed paths (and the naive scan,
    /// where checked) all returned the bit-identical forecast.
    pub forecasts_identical: bool,
}

impl IndexScanPoint {
    /// Pruned linear-scan time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.pruned_ms / self.indexed_ms
    }
}

/// Measurements of one index scaling sweep.
#[derive(Debug, Clone)]
pub struct IndexScanReport {
    /// The workload swept.
    pub workload: IndexScanWorkload,
    /// Number of predictions timed per configuration per point.
    pub rounds: usize,
    /// One measurement per swept history size.
    pub points: Vec<IndexScanPoint>,
}

impl IndexScanReport {
    /// Whether every point agreed across every scan path.
    pub fn forecasts_identical(&self) -> bool {
        self.points.iter().all(|p| p.forecasts_identical)
    }

    /// The pruned-over-indexed speedup at the largest swept size.
    pub fn speedup_at_largest(&self) -> Option<f64> {
        self.points.last().map(IndexScanPoint::speedup)
    }

    /// Indexed time at the largest size over indexed time at the smallest:
    /// the sub-linearity figure (a linear search would scale with the size
    /// ratio; the acceptance bar demands <3× for 10× more history).
    pub fn indexed_scaling_ratio(&self) -> Option<f64> {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if self.points.len() > 1 => {
                Some(last.indexed_ms / first.indexed_ms)
            }
            _ => None,
        }
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{ \"history_slots\": {}, \"pruned_ms_per_prediction\": {:.4}, \
                     \"indexed_ms_per_prediction\": {:.4}, \"speedup\": {:.2}, \
                     \"forecasts_identical\": {} }}",
                    p.slots,
                    p.pruned_ms,
                    p.indexed_ms,
                    p.speedup(),
                    p.forecasts_identical,
                )
            })
            .collect();
        let scaling = self
            .indexed_scaling_ratio()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "null".into());
        format!(
            "{{\n  \"groups\": {},\n  \"users_per_group\": {},\n  \"pivots\": {},\n  \
             \"rounds\": {},\n  \"forecasts_identical\": {},\n  \
             \"speedup_at_largest\": {:.2},\n  \"indexed_scaling_ratio\": {},\n  \
             \"points\": [\n{}\n  ]\n}}",
            self.workload.groups,
            self.workload.users_per_group,
            self.workload.pivots,
            self.rounds,
            self.forecasts_identical(),
            self.speedup_at_largest().unwrap_or(0.0),
            scaling,
            points.join(",\n"),
        )
    }
}

/// Sweeps the vantage-point index against the pruned linear scan over
/// growing history sizes. At every point the serial scan, the chunked scan
/// (2 chunks) and the indexed scan must return bit-identical forecasts; up
/// to [`IndexScanWorkload::verify_naive_up_to`] slots the naive full scan is
/// held to the same bar. Index build time is excluded from the timed rounds
/// (the predictor maintains it incrementally in production).
pub fn run_index(workload: &IndexScanWorkload, rounds: usize) -> IndexScanReport {
    assert!(rounds > 0, "at least one timed round");
    assert!(
        workload.sizes.windows(2).all(|w| w[0] < w[1]) && !workload.sizes.is_empty(),
        "sweep sizes must be ascending and non-empty"
    );
    let max = *workload.sizes.last().expect("non-empty sweep");
    let template = PredictionWorkload {
        slots: max,
        groups: workload.groups,
        users_per_group: workload.users_per_group,
    };
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED);
    let mut history = SlotHistory::hourly();
    let mut predictor = WorkloadPredictor::new(template.group_ids(), history.slot_length_ms);
    let mut points = Vec::with_capacity(workload.sizes.len());
    for &size in &workload.sizes {
        while history.len() < size {
            history.push(synthetic_slot(&template, history.len(), &mut rng));
        }
        let probe = current_probe_slot(&PredictionWorkload {
            slots: size,
            ..template
        });
        // linear policy first so set_history does not pay an index build
        // that the pruned timing would then discard
        predictor.set_index_policy(IndexPolicy::linear());
        predictor.set_parallelism(ParallelismPolicy::serial());
        predictor.set_history(history.clone());

        let reference = predictor.predict(&probe).expect("non-empty history");
        let pruned_ms = time_ms(rounds, || {
            std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
        });

        predictor.set_parallelism(ParallelismPolicy::parallel(2).with_min_parallel_slots(1));
        let chunked = predictor.predict(&probe).expect("non-empty history");
        predictor.set_parallelism(ParallelismPolicy::serial());

        predictor.set_index_policy(
            IndexPolicy::indexed()
                .with_pivots(workload.pivots)
                .with_min_indexed_slots(1),
        );
        assert!(
            predictor.index_active(),
            "the index must be live at every sweep point"
        );
        let indexed = predictor.predict(&probe).expect("non-empty history");
        let indexed_ms = time_ms(rounds, || {
            std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
        });

        let mut forecasts_identical = chunked == reference && indexed == reference;
        if size <= workload.verify_naive_up_to {
            forecasts_identical &=
                predictor.predict_naive(&probe).expect("non-empty history") == reference;
        }
        points.push(IndexScanPoint {
            slots: size,
            pruned_ms,
            indexed_ms,
            forecasts_identical,
        });
    }
    IndexScanReport {
        workload: workload.clone(),
        rounds,
        points,
    }
}

/// Prints the index scaling sweep as an aligned table.
pub fn print_index(report: &IndexScanReport) {
    println!(
        "vantage-point index over {} groups x {} users/group, {} pivots ({} rounds)",
        report.workload.groups,
        report.workload.users_per_group,
        report.workload.pivots,
        report.rounds,
    );
    println!(
        "  {:<14} {:>14} {:>14} {:>10} {:>10}",
        "history slots", "pruned ms", "indexed ms", "speedup", "identical"
    );
    for p in &report.points {
        println!(
            "  {:<14} {:>14.3} {:>14.4} {:>9.1}x {:>10}",
            p.slots,
            p.pruned_ms,
            p.indexed_ms,
            p.speedup(),
            p.forecasts_identical,
        );
    }
    if let Some(ratio) = report.indexed_scaling_ratio() {
        let size_ratio = report.points.last().unwrap().slots as f64
            / report.points.first().unwrap().slots as f64;
        println!("  indexed scaling: {ratio:.2}x more time for {size_ratio:.0}x more history",);
    }
}

/// The three prediction reports combined into the `BENCH_prediction.json`
/// document.
pub fn combined_json(
    pruned: &PredictionBenchReport,
    parallel: &ParallelScanReport,
    index: &IndexScanReport,
) -> String {
    let pruned = pruned.to_json();
    let pruned = pruned.trim_end();
    let parallel = parallel.to_json().replace('\n', "\n  ");
    let index = index.to_json().replace('\n', "\n  ");
    format!(
        "{{\n  \"benchmark\": \"nearest_slot_prediction\",\n  \"pruned_vs_naive\": {},\n  \
         \"parallel_scan\": {},\n  \"index\": {}\n}}\n",
        indent_object(pruned),
        parallel,
        index,
    )
}

/// Re-indents a one-object JSON string by two spaces for nesting.
fn indent_object(json: &str) -> String {
    json.replace('\n', "\n  ")
}

fn time_ms(rounds: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let start = Instant::now();
    for _ in 0..rounds {
        body();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / rounds as f64
}

/// Prints the report as an aligned table.
pub fn print(report: &PredictionBenchReport) {
    println!(
        "nearest-slot prediction over {} slots x {} groups x {} users/group ({} rounds)",
        report.workload.slots,
        report.workload.groups,
        report.workload.users_per_group,
        report.rounds,
    );
    println!("  {:<28} {:>12}", "implementation", "ms/predict");
    println!("  {:<28} {:>12.3}", "naive full scan", report.naive_ms);
    println!(
        "  {:<28} {:>12.3}",
        "pruned nearest-neighbour", report.pruned_ms
    );
    println!("  speedup: {:.1}x", report.speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_and_naive_agree_on_a_small_workload() {
        let workload = PredictionWorkload {
            slots: 60,
            groups: 3,
            users_per_group: 12,
        };
        let report = run(&workload, 2);
        assert!(report.naive_ms > 0.0 && report.pruned_ms > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"history_slots\": 60"));
        assert!(json.contains("speedup"));
    }

    #[test]
    fn parallel_sweep_agrees_and_reports_every_thread_count() {
        let workload = ParallelScanWorkload {
            slots: 80,
            groups: 3,
            users_per_group: 10,
            thread_counts: vec![1, 2, 4],
        };
        let report = run_parallel(&workload, 2);
        assert!(report.forecasts_identical, "parallel diverged from serial");
        assert_eq!(report.sweep.len(), 3);
        assert!(report.serial_ms > 0.0);
        assert!(report.sweep.iter().all(|m| m.ms_per_prediction > 0.0));
        assert!(report.speedup_at(4).is_some());
        assert!(report.speedup_at(16).is_none());
        assert!(report.available_parallelism >= 1);
        let (threads, speedup) = report
            .best_feasible_speedup()
            .expect("threads=1 always fits the machine");
        assert!(threads <= report.available_parallelism);
        assert!(speedup > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"forecasts_identical\": true"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"available_parallelism\""));
    }

    #[test]
    fn index_sweep_agrees_and_reports_every_size() {
        let workload = IndexScanWorkload {
            sizes: vec![60, 120],
            groups: 3,
            users_per_group: 10,
            pivots: 3,
            verify_naive_up_to: 120,
        };
        let report = run_index(&workload, 2);
        assert_eq!(report.points.len(), 2);
        assert!(report.forecasts_identical(), "indexed diverged from serial");
        assert!(report.points.iter().all(|p| p.indexed_ms > 0.0));
        assert!(report.speedup_at_largest().is_some());
        assert!(report.indexed_scaling_ratio().is_some());
        let json = report.to_json();
        assert!(json.contains("\"history_slots\": 120"));
        assert!(json.contains("\"forecasts_identical\": true"));
        assert!(json.contains("\"indexed_scaling_ratio\""));
    }

    #[test]
    fn combined_json_nests_both_reports() {
        let pruned = run(
            &PredictionWorkload {
                slots: 40,
                groups: 2,
                users_per_group: 8,
            },
            1,
        );
        let parallel = run_parallel(
            &ParallelScanWorkload {
                slots: 40,
                groups: 2,
                users_per_group: 8,
                thread_counts: vec![2],
            },
            1,
        );
        let index = run_index(
            &IndexScanWorkload {
                sizes: vec![40],
                groups: 2,
                users_per_group: 8,
                pivots: 2,
                verify_naive_up_to: 40,
            },
            1,
        );
        let json = combined_json(&pruned, &parallel, &index);
        assert!(json.contains("\"benchmark\": \"nearest_slot_prediction\""));
        assert!(json.contains("\"pruned_vs_naive\""));
        assert!(json.contains("\"parallel_scan\""));
        assert!(json.contains("\"sweep\""));
        assert!(json.contains("\"index\""));
        assert!(json.contains("\"points\""));
    }

    #[test]
    fn synthetic_history_is_deterministic_and_diurnal() {
        let workload = PredictionWorkload {
            slots: 48,
            groups: 2,
            users_per_group: 20,
        };
        let a = synthetic_history(&workload);
        let b = synthetic_history(&workload);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        let loads: Vec<usize> = a
            .slots()
            .iter()
            .map(|s| s.load_of(AccelerationGroupId(1)))
            .collect();
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max > min, "load should ramp over the day");
    }
}
