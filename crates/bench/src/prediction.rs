//! Performance harness for the nearest-slot workload predictor: the pruned,
//! allocation-free search of `mca-core` versus the retained naive baseline
//! (full scan, per-candidate set construction — the seed's cost model).
//!
//! The headline configuration follows the acceptance bar of the time-slot
//! engine rework: a 5,000-slot × 3-group × 200-users-per-group synthetic
//! history, on which the pruned search must be at least 5× faster than the
//! naive scan. `cargo run --release -p mca-bench --bin bench_prediction`
//! regenerates `BENCH_prediction.json` at the repository root.
//!
//! A second harness ([`run_parallel`]) sweeps the chunked **parallel**
//! knowledge-base scan against the sequential best-first scan on a huge
//! single-tenant history (100k slots — the CloneCloud-style regime), over
//! thread counts 1/2/4/8, asserting every configuration returns the
//! bit-identical forecast (the naive scan included). The ≥2× acceptance
//! gate applies at 4 threads.

use mca_core::{ParallelismPolicy, SlotHistory, TimeSlot, WorkloadPredictor};
use mca_offload::{AccelerationGroupId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the synthetic prediction workload.
#[derive(Debug, Clone, Copy)]
pub struct PredictionWorkload {
    /// Number of historical slots (`H`).
    pub slots: usize,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
}

impl PredictionWorkload {
    /// The acceptance-bar configuration: 5,000 slots × 3 groups × 200 users.
    pub fn headline() -> Self {
        Self {
            slots: 5_000,
            groups: 3,
            users_per_group: 200,
        }
    }

    /// The acceleration-group universe of this workload.
    pub fn group_ids(&self) -> Vec<AccelerationGroupId> {
        (1..=self.groups as u8).map(AccelerationGroupId).collect()
    }
}

/// Builds a drifting synthetic history: each group's user population is a
/// contiguous id window that slides slowly over time while the load ramps
/// diurnally, so consecutive slots share most users (as the paper's traces
/// do) and distances between far-apart slots are large — the regime the
/// signature pruning exploits.
pub fn synthetic_history(workload: &PredictionWorkload) -> SlotHistory {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED);
    let mut history = SlotHistory::hourly();
    for hour in 0..workload.slots {
        history.push(synthetic_slot(workload, hour, &mut rng));
    }
    history
}

/// The probe used as the "current" slot: a fresh slot resembling (but not
/// equal to) the most recent history entries.
pub fn current_probe_slot(workload: &PredictionWorkload) -> TimeSlot {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED ^ 0x5bd1e995);
    synthetic_slot(workload, workload.slots, &mut rng)
}

fn synthetic_slot(workload: &PredictionWorkload, hour: usize, rng: &mut StdRng) -> TimeSlot {
    let mut slot = TimeSlot::new(hour);
    for (g, group) in workload.group_ids().into_iter().enumerate() {
        // diurnal ramp: load swings ±25% around nominal with period 24
        let phase = (hour % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let ramp = 1.0 + 0.25 * phase.sin();
        let load = ((workload.users_per_group as f64 * ramp).round() as usize).max(1);
        // the user-id window drifts by ~2% of the population per slot
        let drift = hour * (workload.users_per_group / 50).max(1);
        let base = (g * 1_000_000 + drift) as u32;
        for u in 0..load as u32 {
            // small churn: a few ids are replaced by out-of-window users
            let id = if rng.gen_bool(0.02) {
                base + u + rng.gen_range(1u32..50)
            } else {
                base + u
            };
            slot.assign(group, UserId(id));
        }
    }
    slot
}

/// Measurements of one pruned-versus-naive comparison.
#[derive(Debug, Clone)]
pub struct PredictionBenchReport {
    /// The workload shape measured.
    pub workload: PredictionWorkload,
    /// Number of predictions timed per implementation.
    pub rounds: usize,
    /// Mean wall-clock time of one naive prediction, milliseconds.
    pub naive_ms: f64,
    /// Mean wall-clock time of one pruned prediction, milliseconds.
    pub pruned_ms: f64,
}

impl PredictionBenchReport {
    /// Naive time over pruned time.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.pruned_ms
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"history_slots\": {},\n  \
             \"groups\": {},\n  \"users_per_group\": {},\n  \"rounds\": {},\n  \
             \"naive_ms_per_prediction\": {:.4},\n  \"pruned_ms_per_prediction\": {:.4},\n  \
             \"speedup\": {:.2}\n}}",
            self.workload.slots,
            self.workload.groups,
            self.workload.users_per_group,
            self.rounds,
            self.naive_ms,
            self.pruned_ms,
            self.speedup(),
        )
    }
}

/// Times `rounds` naive and pruned `NearestSlot` predictions over the same
/// predictor state and probe, and checks both return identical forecasts.
pub fn run(workload: &PredictionWorkload, rounds: usize) -> PredictionBenchReport {
    assert!(rounds > 0, "at least one timed round");
    let history = synthetic_history(workload);
    let probe = current_probe_slot(workload);
    let mut predictor = WorkloadPredictor::new(workload.group_ids(), history.slot_length_ms);
    predictor.set_history(history);

    // correctness first: the pruned search must reproduce the naive forecast
    let fast = predictor.predict(&probe).expect("non-empty history");
    let naive = predictor.predict_naive(&probe).expect("non-empty history");
    assert_eq!(
        fast, naive,
        "pruned search diverged from the naive reference"
    );

    let naive_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict_naive(&probe).expect("non-empty history"));
    });
    let pruned_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
    });
    PredictionBenchReport {
        workload: *workload,
        rounds,
        naive_ms,
        pruned_ms,
    }
}

/// Shape of the parallel-scan sweep: a huge single-tenant history scanned
/// by one predictor, serial versus chunked across a rayon pool.
#[derive(Debug, Clone)]
pub struct ParallelScanWorkload {
    /// Number of historical slots (the CloneCloud-style regime: 100k+).
    pub slots: usize,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
    /// Thread counts swept (each with a matching chunk count and pool).
    pub thread_counts: Vec<usize>,
}

impl ParallelScanWorkload {
    /// The acceptance-bar sweep: a 100,000-slot history, threads 1/2/4/8,
    /// ≥2× over the sequential scan required at 4 threads.
    pub fn headline() -> Self {
        Self {
            slots: 100_000,
            groups: 3,
            users_per_group: 48,
            thread_counts: vec![1, 2, 4, 8],
        }
    }

    /// The CI smoke shape: small enough to run in seconds, large enough to
    /// clear the fan-out threshold so the chunked path genuinely runs.
    pub fn smoke() -> Self {
        Self {
            slots: 6_000,
            groups: 3,
            users_per_group: 12,
            thread_counts: vec![1, 2, 4],
        }
    }

    fn as_prediction_workload(&self) -> PredictionWorkload {
        PredictionWorkload {
            slots: self.slots,
            groups: self.groups,
            users_per_group: self.users_per_group,
        }
    }
}

/// One point of the parallel sweep.
#[derive(Debug, Clone, Copy)]
pub struct ParallelScanMeasurement {
    /// Chunk count and pool width of this configuration.
    pub threads: usize,
    /// Mean wall-clock time of one prediction, milliseconds.
    pub ms_per_prediction: f64,
}

/// Measurements of one serial-versus-parallel sweep.
#[derive(Debug, Clone)]
pub struct ParallelScanReport {
    /// The workload swept.
    pub workload: ParallelScanWorkload,
    /// Number of predictions timed per configuration.
    pub rounds: usize,
    /// Mean wall-clock time of one sequential (best-first) prediction, ms.
    pub serial_ms: f64,
    /// One measurement per swept thread count.
    pub sweep: Vec<ParallelScanMeasurement>,
    /// Whether every configuration (and the naive full scan) returned the
    /// bit-identical forecast.
    pub forecasts_identical: bool,
}

impl ParallelScanReport {
    /// Serial time over the parallel time at `threads`, when measured.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.sweep
            .iter()
            .find(|m| m.threads == threads)
            .map(|m| self.serial_ms / m.ms_per_prediction)
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"threads\": {}, \"ms_per_prediction\": {:.4}, \"speedup\": {:.2} }}",
                    m.threads,
                    m.ms_per_prediction,
                    self.serial_ms / m.ms_per_prediction,
                )
            })
            .collect();
        format!(
            "{{\n  \"history_slots\": {},\n  \"groups\": {},\n  \"users_per_group\": {},\n  \
             \"rounds\": {},\n  \"serial_ms_per_prediction\": {:.4},\n  \
             \"forecasts_identical\": {},\n  \"sweep\": [\n{}\n  ]\n}}",
            self.workload.slots,
            self.workload.groups,
            self.workload.users_per_group,
            self.rounds,
            self.serial_ms,
            self.forecasts_identical,
            sweep.join(",\n"),
        )
    }
}

/// Sweeps the chunked parallel scan against the sequential scan on one huge
/// history. Every configuration runs inside a rayon pool of exactly
/// `threads` workers with a matching chunk count; every forecast (including
/// the naive full scan's, checked once) must be bit-identical to the
/// sequential scan's.
pub fn run_parallel(workload: &ParallelScanWorkload, rounds: usize) -> ParallelScanReport {
    assert!(rounds > 0, "at least one timed round");
    let inner = workload.as_prediction_workload();
    let history = synthetic_history(&inner);
    let probe = current_probe_slot(&inner);
    let mut predictor = WorkloadPredictor::new(inner.group_ids(), history.slot_length_ms);
    predictor.set_history(history);

    let reference = predictor.predict(&probe).expect("non-empty history");
    let mut forecasts_identical =
        reference == predictor.predict_naive(&probe).expect("non-empty history");

    let serial_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
    });

    let mut sweep = Vec::with_capacity(workload.thread_counts.len());
    for &threads in &workload.thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        // force the fan-out threshold down so the sweep measures the chunked
        // path even on custom sub-threshold history shapes — without this a
        // <4096-slot workload would silently re-time the serial scan under a
        // "chunked" label
        predictor.set_parallelism(ParallelismPolicy::parallel(threads).with_min_parallel_slots(1));
        let forecast = pool.install(|| predictor.predict(&probe).expect("non-empty history"));
        forecasts_identical &= forecast == reference;
        let ms_per_prediction = time_ms(rounds, || {
            pool.install(|| {
                std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
            });
        });
        sweep.push(ParallelScanMeasurement {
            threads,
            ms_per_prediction,
        });
    }
    predictor.set_parallelism(ParallelismPolicy::serial());

    ParallelScanReport {
        workload: workload.clone(),
        rounds,
        serial_ms,
        sweep,
        forecasts_identical,
    }
}

/// Prints the parallel sweep as an aligned table.
pub fn print_parallel(report: &ParallelScanReport) {
    println!(
        "chunked parallel scan over {} slots x {} groups x {} users/group ({} rounds)",
        report.workload.slots,
        report.workload.groups,
        report.workload.users_per_group,
        report.rounds,
    );
    println!(
        "  {:<28} {:>12} {:>10}",
        "configuration", "ms/predict", "speedup"
    );
    println!(
        "  {:<28} {:>12.3} {:>10}",
        "serial best-first scan", report.serial_ms, "1.0x"
    );
    for m in &report.sweep {
        println!(
            "  {:<28} {:>12.3} {:>9.1}x",
            format!("chunked, {} thread(s)", m.threads),
            m.ms_per_prediction,
            report.serial_ms / m.ms_per_prediction,
        );
    }
    println!(
        "  forecasts identical across every configuration: {}",
        report.forecasts_identical
    );
}

/// The two prediction reports combined into the `BENCH_prediction.json`
/// document.
pub fn combined_json(pruned: &PredictionBenchReport, parallel: &ParallelScanReport) -> String {
    let pruned = pruned.to_json();
    let pruned = pruned.trim_end();
    let parallel = parallel.to_json().replace('\n', "\n  ");
    format!(
        "{{\n  \"benchmark\": \"nearest_slot_prediction\",\n  \"pruned_vs_naive\": {},\n  \
         \"parallel_scan\": {}\n}}\n",
        indent_object(pruned),
        parallel,
    )
}

/// Re-indents a one-object JSON string by two spaces for nesting.
fn indent_object(json: &str) -> String {
    json.replace('\n', "\n  ")
}

fn time_ms(rounds: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let start = Instant::now();
    for _ in 0..rounds {
        body();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / rounds as f64
}

/// Prints the report as an aligned table.
pub fn print(report: &PredictionBenchReport) {
    println!(
        "nearest-slot prediction over {} slots x {} groups x {} users/group ({} rounds)",
        report.workload.slots,
        report.workload.groups,
        report.workload.users_per_group,
        report.rounds,
    );
    println!("  {:<28} {:>12}", "implementation", "ms/predict");
    println!("  {:<28} {:>12.3}", "naive full scan", report.naive_ms);
    println!(
        "  {:<28} {:>12.3}",
        "pruned nearest-neighbour", report.pruned_ms
    );
    println!("  speedup: {:.1}x", report.speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_and_naive_agree_on_a_small_workload() {
        let workload = PredictionWorkload {
            slots: 60,
            groups: 3,
            users_per_group: 12,
        };
        let report = run(&workload, 2);
        assert!(report.naive_ms > 0.0 && report.pruned_ms > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"history_slots\": 60"));
        assert!(json.contains("speedup"));
    }

    #[test]
    fn parallel_sweep_agrees_and_reports_every_thread_count() {
        let workload = ParallelScanWorkload {
            slots: 80,
            groups: 3,
            users_per_group: 10,
            thread_counts: vec![1, 2, 4],
        };
        let report = run_parallel(&workload, 2);
        assert!(report.forecasts_identical, "parallel diverged from serial");
        assert_eq!(report.sweep.len(), 3);
        assert!(report.serial_ms > 0.0);
        assert!(report.sweep.iter().all(|m| m.ms_per_prediction > 0.0));
        assert!(report.speedup_at(4).is_some());
        assert!(report.speedup_at(16).is_none());
        let json = report.to_json();
        assert!(json.contains("\"forecasts_identical\": true"));
        assert!(json.contains("\"threads\": 4"));
    }

    #[test]
    fn combined_json_nests_both_reports() {
        let pruned = run(
            &PredictionWorkload {
                slots: 40,
                groups: 2,
                users_per_group: 8,
            },
            1,
        );
        let parallel = run_parallel(
            &ParallelScanWorkload {
                slots: 40,
                groups: 2,
                users_per_group: 8,
                thread_counts: vec![2],
            },
            1,
        );
        let json = combined_json(&pruned, &parallel);
        assert!(json.contains("\"benchmark\": \"nearest_slot_prediction\""));
        assert!(json.contains("\"pruned_vs_naive\""));
        assert!(json.contains("\"parallel_scan\""));
        assert!(json.contains("\"sweep\""));
    }

    #[test]
    fn synthetic_history_is_deterministic_and_diurnal() {
        let workload = PredictionWorkload {
            slots: 48,
            groups: 2,
            users_per_group: 20,
        };
        let a = synthetic_history(&workload);
        let b = synthetic_history(&workload);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        let loads: Vec<usize> = a
            .slots()
            .iter()
            .map(|s| s.load_of(AccelerationGroupId(1)))
            .collect();
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max > min, "load should ramp over the day");
    }
}
