//! Performance harness for the nearest-slot workload predictor: the pruned,
//! allocation-free search of `mca-core` versus the retained naive baseline
//! (full scan, per-candidate set construction — the seed's cost model).
//!
//! The headline configuration follows the acceptance bar of the time-slot
//! engine rework: a 5,000-slot × 3-group × 200-users-per-group synthetic
//! history, on which the pruned search must be at least 5× faster than the
//! naive scan. `cargo run --release -p mca-bench --bin bench_prediction`
//! regenerates `BENCH_prediction.json` at the repository root.

use mca_core::{SlotHistory, TimeSlot, WorkloadPredictor};
use mca_offload::{AccelerationGroupId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shape of the synthetic prediction workload.
#[derive(Debug, Clone, Copy)]
pub struct PredictionWorkload {
    /// Number of historical slots (`H`).
    pub slots: usize,
    /// Number of acceleration groups.
    pub groups: usize,
    /// Nominal users per group per slot.
    pub users_per_group: usize,
}

impl PredictionWorkload {
    /// The acceptance-bar configuration: 5,000 slots × 3 groups × 200 users.
    pub fn headline() -> Self {
        Self {
            slots: 5_000,
            groups: 3,
            users_per_group: 200,
        }
    }

    /// The acceleration-group universe of this workload.
    pub fn group_ids(&self) -> Vec<AccelerationGroupId> {
        (1..=self.groups as u8).map(AccelerationGroupId).collect()
    }
}

/// Builds a drifting synthetic history: each group's user population is a
/// contiguous id window that slides slowly over time while the load ramps
/// diurnally, so consecutive slots share most users (as the paper's traces
/// do) and distances between far-apart slots are large — the regime the
/// signature pruning exploits.
pub fn synthetic_history(workload: &PredictionWorkload) -> SlotHistory {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED);
    let mut history = SlotHistory::hourly();
    for hour in 0..workload.slots {
        history.push(synthetic_slot(workload, hour, &mut rng));
    }
    history
}

/// The probe used as the "current" slot: a fresh slot resembling (but not
/// equal to) the most recent history entries.
pub fn current_probe_slot(workload: &PredictionWorkload) -> TimeSlot {
    let mut rng = StdRng::seed_from_u64(crate::DEFAULT_SEED ^ 0x5bd1e995);
    synthetic_slot(workload, workload.slots, &mut rng)
}

fn synthetic_slot(workload: &PredictionWorkload, hour: usize, rng: &mut StdRng) -> TimeSlot {
    let mut slot = TimeSlot::new(hour);
    for (g, group) in workload.group_ids().into_iter().enumerate() {
        // diurnal ramp: load swings ±25% around nominal with period 24
        let phase = (hour % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let ramp = 1.0 + 0.25 * phase.sin();
        let load = ((workload.users_per_group as f64 * ramp).round() as usize).max(1);
        // the user-id window drifts by ~2% of the population per slot
        let drift = hour * (workload.users_per_group / 50).max(1);
        let base = (g * 1_000_000 + drift) as u32;
        for u in 0..load as u32 {
            // small churn: a few ids are replaced by out-of-window users
            let id = if rng.gen_bool(0.02) {
                base + u + rng.gen_range(1u32..50)
            } else {
                base + u
            };
            slot.assign(group, UserId(id));
        }
    }
    slot
}

/// Measurements of one pruned-versus-naive comparison.
#[derive(Debug, Clone)]
pub struct PredictionBenchReport {
    /// The workload shape measured.
    pub workload: PredictionWorkload,
    /// Number of predictions timed per implementation.
    pub rounds: usize,
    /// Mean wall-clock time of one naive prediction, milliseconds.
    pub naive_ms: f64,
    /// Mean wall-clock time of one pruned prediction, milliseconds.
    pub pruned_ms: f64,
}

impl PredictionBenchReport {
    /// Naive time over pruned time.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.pruned_ms
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"nearest_slot_prediction\",\n  \"history_slots\": {},\n  \
             \"groups\": {},\n  \"users_per_group\": {},\n  \"rounds\": {},\n  \
             \"naive_ms_per_prediction\": {:.4},\n  \"pruned_ms_per_prediction\": {:.4},\n  \
             \"speedup\": {:.2}\n}}\n",
            self.workload.slots,
            self.workload.groups,
            self.workload.users_per_group,
            self.rounds,
            self.naive_ms,
            self.pruned_ms,
            self.speedup(),
        )
    }
}

/// Times `rounds` naive and pruned `NearestSlot` predictions over the same
/// predictor state and probe, and checks both return identical forecasts.
pub fn run(workload: &PredictionWorkload, rounds: usize) -> PredictionBenchReport {
    assert!(rounds > 0, "at least one timed round");
    let history = synthetic_history(workload);
    let probe = current_probe_slot(workload);
    let mut predictor = WorkloadPredictor::new(workload.group_ids(), history.slot_length_ms);
    predictor.set_history(history);

    // correctness first: the pruned search must reproduce the naive forecast
    let fast = predictor.predict(&probe).expect("non-empty history");
    let naive = predictor.predict_naive(&probe).expect("non-empty history");
    assert_eq!(
        fast, naive,
        "pruned search diverged from the naive reference"
    );

    let naive_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict_naive(&probe).expect("non-empty history"));
    });
    let pruned_ms = time_ms(rounds, || {
        std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
    });
    PredictionBenchReport {
        workload: *workload,
        rounds,
        naive_ms,
        pruned_ms,
    }
}

fn time_ms(rounds: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let start = Instant::now();
    for _ in 0..rounds {
        body();
    }
    start.elapsed().as_secs_f64() * 1_000.0 / rounds as f64
}

/// Prints the report as an aligned table.
pub fn print(report: &PredictionBenchReport) {
    println!(
        "nearest-slot prediction over {} slots x {} groups x {} users/group ({} rounds)",
        report.workload.slots,
        report.workload.groups,
        report.workload.users_per_group,
        report.rounds,
    );
    println!("  {:<28} {:>12}", "implementation", "ms/predict");
    println!("  {:<28} {:>12.3}", "naive full scan", report.naive_ms);
    println!(
        "  {:<28} {:>12.3}",
        "pruned nearest-neighbour", report.pruned_ms
    );
    println!("  speedup: {:.1}x", report.speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_and_naive_agree_on_a_small_workload() {
        let workload = PredictionWorkload {
            slots: 60,
            groups: 3,
            users_per_group: 12,
        };
        let report = run(&workload, 2);
        assert!(report.naive_ms > 0.0 && report.pruned_ms > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"history_slots\": 60"));
        assert!(json.contains("speedup"));
    }

    #[test]
    fn synthetic_history_is_deterministic_and_diurnal() {
        let workload = PredictionWorkload {
            slots: 48,
            groups: 2,
            users_per_group: 20,
        };
        let a = synthetic_history(&workload);
        let b = synthetic_history(&workload);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        let loads: Vec<usize> = a
            .slots()
            .iter()
            .map(|s| s.load_of(AccelerationGroupId(1)))
            .collect();
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max > min, "load should ramp over the day");
    }
}
