//! Fig. 8 — workload management: (a) the ≈150 ms routing overhead of the
//! SDN-accelerator per acceleration group, (b) the response time of a
//! t2.large as the arrival rate doubles every five minutes from 1 Hz to
//! 1024 Hz, and (c) the fraction of requests served vs dropped at each rate.

use crate::util;
use mca_cloudsim::{InstanceType, OpenLoopResult, Server};
use mca_core::{SdnAccelerator, SystemConfig};
use mca_offload::{AccelerationGroupId, OffloadRequest, RequestId, TaskPool, TaskSpec, UserId};
use mca_workload::DoublingRateScenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Routing-time samples per acceleration group (Fig. 8a).
#[derive(Debug, Clone)]
pub struct RoutingSeries {
    /// Acceleration group.
    pub group: u8,
    /// Per-request routing times (`T2`), ms.
    pub samples: Vec<f64>,
}

/// One step of the saturation experiment (Fig. 8b/8c).
#[derive(Debug, Clone, Copy)]
pub struct SaturationRow {
    /// Offered arrival rate, Hz.
    pub arrival_hz: f64,
    /// Mean response time of completed requests, ms.
    pub mean_response_ms: f64,
    /// Fraction of requests served successfully.
    pub success_ratio: f64,
    /// Fraction of requests dropped.
    pub fail_ratio: f64,
}

/// Output of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Output {
    /// Fig. 8a: routing time per group.
    pub routing: Vec<RoutingSeries>,
    /// Fig. 8b/8c: the saturation sweep.
    pub saturation: Vec<SaturationRow>,
}

/// Runs both panels. `step_duration_ms` is the simulated time per arrival
/// rate (the paper uses 5 minutes per rate).
pub fn run(requests_per_group: u32, step_duration_ms: f64, seed: u64) -> Fig8Output {
    let mut rng = StdRng::seed_from_u64(seed);

    // Fig. 8a: routing overhead per group under a 30-user concurrent load.
    let config = SystemConfig::paper_five_groups().with_background_load(30);
    let mut sdn = SdnAccelerator::new(config);
    let mut routing = Vec::new();
    for group in 1u8..=4 {
        let mut samples = Vec::new();
        for i in 0..requests_per_group {
            let request = OffloadRequest::new(
                RequestId(u64::from(i)),
                UserId(i),
                AccelerationGroupId(group),
                TaskSpec::paper_static_minimax(),
                90.0,
                f64::from(i) * 10_000.0,
            );
            let record = sdn
                .handle(&request, f64::from(i) * 10_000.0, &mut rng)
                .expect("route")
                .record;
            samples.push(record.t2_ms);
        }
        routing.push(RoutingSeries { group, samples });
    }

    // Fig. 8b/8c: the t2.large saturation sweep with doubling arrival rates.
    let scenario = DoublingRateScenario {
        start_hz: 1.0,
        end_hz: 1024.0,
        step_duration_ms,
    };
    let pool = TaskPool::paper_default();
    let saturation = scenario
        .steps()
        .iter()
        .map(|step| {
            let mut server = Server::new(InstanceType::T2Large);
            let result: OpenLoopResult =
                server.run_open_loop(&pool, step.arrival_hz, step.duration_ms, &mut rng);
            SaturationRow {
                arrival_hz: step.arrival_hz,
                mean_response_ms: result.mean_response_ms,
                success_ratio: result.success_ratio,
                fail_ratio: 1.0 - result.success_ratio,
            }
        })
        .collect();

    Fig8Output {
        routing,
        saturation,
    }
}

/// Prints all three panels.
pub fn print(output: &Fig8Output) {
    util::header(
        "Fig 8a: SDN routing time by acceleration group",
        &["group", "mean_T2_ms", "min_ms", "max_ms"],
    );
    for series in &output.routing {
        let mean = series.samples.iter().sum::<f64>() / series.samples.len().max(1) as f64;
        let min = series.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = series.samples.iter().copied().fold(0.0, f64::max);
        util::row(&[
            format!("A{}", series.group),
            util::f1(mean),
            util::f1(min),
            util::f1(max),
        ]);
    }
    util::header(
        "Fig 8b/8c: t2.large under doubling arrival rate",
        &["arrival_hz", "mean_response_ms", "success_%", "fail_%"],
    );
    for r in &output.saturation {
        util::row(&[
            format!("{}", r.arrival_hz),
            util::f1(r.mean_response_ms),
            util::f1(r.success_ratio * 100.0),
            util::f1(r.fail_ratio * 100.0),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_overhead_is_stable_across_groups() {
        let out = run(30, 10_000.0, 1);
        for series in &out.routing {
            let mean = series.samples.iter().sum::<f64>() / series.samples.len() as f64;
            assert!(
                (mean - 150.0).abs() < 25.0,
                "group {} mean {mean}",
                series.group
            );
        }
    }

    #[test]
    fn saturation_knee_sits_between_32_and_128_hz() {
        let out = run(5, 20_000.0, 2);
        let at = |hz: f64| {
            out.saturation
                .iter()
                .find(|r| r.arrival_hz == hz)
                .copied()
                .unwrap()
        };
        assert!(at(16.0).success_ratio > 0.95);
        assert!(at(128.0).success_ratio < 0.7);
        assert!(at(1024.0).fail_ratio > 0.9);
        assert!(at(1024.0).mean_response_ms > 4.0 * at(8.0).mean_response_ms);
        // response time is monotone-ish non-decreasing in offered rate beyond the knee
        let knee = at(32.0).mean_response_ms;
        assert!(at(256.0).mean_response_ms > knee);
    }
}
