//! Fig. 5 — differences between acceleration levels for a static minimax
//! load: a level-2 server executes the task ≈1.25× faster than level 1, a
//! level-3 server ≈1.73× faster than level 1 (≈1.36× faster than level 2).

use crate::util;
use mca_cloudsim::{InstanceType, Server};
use mca_offload::{TaskPool, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean response time per acceleration level at one concurrency.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Number of concurrent mobile users.
    pub users: usize,
    /// Mean response time on the level-1 representative (t2.small), ms.
    pub level1_ms: f64,
    /// Mean response time on the level-2 representative (t2.large), ms.
    pub level2_ms: f64,
    /// Mean response time on the level-3 representative (m4.10xlarge), ms.
    pub level3_ms: f64,
}

/// Output of the Fig. 5 experiment: the per-load rows and the single-task
/// speed-up ratios between levels.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// Response time per concurrency level.
    pub rows: Vec<Fig5Row>,
    /// Speed-up of level 2 over level 1 for a single task.
    pub speedup_2_over_1: f64,
    /// Speed-up of level 3 over level 1 for a single task.
    pub speedup_3_over_1: f64,
    /// Speed-up of level 3 over level 2 for a single task.
    pub speedup_3_over_2: f64,
}

/// Runs the static-minimax comparison across acceleration levels.
pub fn run(duration_per_level_ms: f64, seed: u64) -> Fig5Output {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = TaskPool::static_load(TaskSpec::paper_static_minimax());
    let levels = [
        InstanceType::T2Small,
        InstanceType::T2Large,
        InstanceType::M4_10XLarge,
    ];
    let loads = [1usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let mut rows = Vec::new();
    for users in loads {
        let mut means = [0.0f64; 3];
        for (i, ty) in levels.iter().enumerate() {
            let mut server = Server::new(*ty);
            means[i] = server
                .run_closed_loop(&pool, users, duration_per_level_ms, &mut rng)
                .mean_ms;
        }
        rows.push(Fig5Row {
            users,
            level1_ms: means[0],
            level2_ms: means[1],
            level3_ms: means[2],
        });
    }
    // single-task ratios, excluding the per-request surrogate overhead
    let work = TaskSpec::paper_static_minimax().work_units();
    let single = |ty: InstanceType| Server::new(ty).expected_execution_ms(work, 1) - 18.0;
    let (l1, l2, l3) = (single(levels[0]), single(levels[1]), single(levels[2]));
    Fig5Output {
        rows,
        speedup_2_over_1: l1 / l2,
        speedup_3_over_1: l1 / l3,
        speedup_3_over_2: l2 / l3,
    }
}

/// Prints the figure as a text table.
pub fn print(output: &Fig5Output) {
    util::header(
        "Fig 5: acceleration level differences (static minimax)",
        &["users", "accel1_ms", "accel2_ms", "accel3_ms"],
    );
    for r in &output.rows {
        util::row(&[
            r.users.to_string(),
            util::f1(r.level1_ms),
            util::f1(r.level2_ms),
            util::f1(r.level3_ms),
        ]);
    }
    println!(
        "single-task speedups: level2/level1 = {:.2}x, level3/level1 = {:.2}x, level3/level2 = {:.2}x",
        output.speedup_2_over_1, output.speedup_3_over_1, output.speedup_3_over_2
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_match_the_paper_ratios() {
        let out = run(20_000.0, 3);
        assert!(
            (out.speedup_2_over_1 - 1.25).abs() < 0.05,
            "{}",
            out.speedup_2_over_1
        );
        assert!(
            (out.speedup_3_over_1 - 1.73).abs() < 0.05,
            "{}",
            out.speedup_3_over_1
        );
        assert!(
            (out.speedup_3_over_2 - 1.38).abs() < 0.06,
            "{}",
            out.speedup_3_over_2
        );
        // higher levels are faster at every load level
        for r in &out.rows {
            assert!(r.level1_ms > r.level2_ms);
            assert!(r.level2_ms > r.level3_ms);
        }
    }
}
