//! Fig. 11 — 3G and LTE round-trip times per mobile operator and time of
//! day, from a synthetic NetRadar-style measurement campaign calibrated to
//! the per-operator statistics reported in §VI-C-4.

use crate::util;
use mca_network::{LatencyStats, NetRadarCampaign, Operator, Technology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One operator's campaign for both technologies.
#[derive(Debug, Clone)]
pub struct OperatorSeries {
    /// The operator.
    pub operator: Operator,
    /// Overall 3G statistics.
    pub threeg: LatencyStats,
    /// Overall LTE statistics.
    pub lte: LatencyStats,
    /// Hourly mean RTT for 3G (24 entries).
    pub threeg_hourly: Vec<f64>,
    /// Hourly mean RTT for LTE (24 entries).
    pub lte_hourly: Vec<f64>,
}

/// Runs the synthetic campaign. `scale` divides the paper's per-pair sample
/// counts (≈150 k–500 k); `scale = 50` keeps the run fast while preserving
/// the statistics.
pub fn run(scale: usize, seed: u64) -> Vec<OperatorSeries> {
    let mut rng = StdRng::seed_from_u64(seed);
    Operator::ALL
        .iter()
        .map(|&operator| {
            let threeg =
                NetRadarCampaign::run_paper_sized(operator, Technology::ThreeG, scale, &mut rng);
            let lte = NetRadarCampaign::run_paper_sized(operator, Technology::Lte, scale, &mut rng);
            OperatorSeries {
                operator,
                threeg: threeg.overall_stats(),
                lte: lte.overall_stats(),
                threeg_hourly: threeg
                    .hourly_aggregate()
                    .iter()
                    .map(|h| h.stats.mean_ms)
                    .collect(),
                lte_hourly: lte
                    .hourly_aggregate()
                    .iter()
                    .map(|h| h.stats.mean_ms)
                    .collect(),
            }
        })
        .collect()
}

/// Prints the overall statistics and the diurnal series.
pub fn print(series: &[OperatorSeries]) {
    util::header(
        "Fig 11: overall RTT per operator",
        &[
            "operator",
            "tech",
            "mean_ms",
            "sd_ms",
            "median_ms",
            "samples",
        ],
    );
    for s in series {
        util::row(&[
            s.operator.to_string(),
            "3G".into(),
            util::f1(s.threeg.mean_ms),
            util::f1(s.threeg.std_dev_ms),
            util::f1(s.threeg.median_ms),
            s.threeg.count.to_string(),
        ]);
        util::row(&[
            s.operator.to_string(),
            "LTE".into(),
            util::f1(s.lte.mean_ms),
            util::f1(s.lte.std_dev_ms),
            util::f1(s.lte.median_ms),
            s.lte.count.to_string(),
        ]);
    }
    for s in series {
        util::header(
            &format!("Fig 11: hourly mean RTT, operator {}", s.operator),
            &["hour", "3G_ms", "LTE_ms"],
        );
        for hour in 0..24 {
            util::row(&[
                hour.to_string(),
                util::f1(s.threeg_hourly[hour]),
                util::f1(s.lte_hourly[hour]),
            ]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_statistics_match_paper_calibration() {
        let series = run(200, 3);
        assert_eq!(series.len(), 3);
        let expectations = [
            (Operator::Alpha, 128.0, 41.0),
            (Operator::Beta, 141.0, 36.0),
            (Operator::Gamma, 137.0, 42.0),
        ];
        for (operator, threeg_mean, lte_mean) in expectations {
            let s = series.iter().find(|s| s.operator == operator).unwrap();
            assert!(
                (s.threeg.mean_ms - threeg_mean).abs() / threeg_mean < 0.15,
                "{operator} 3G {}",
                s.threeg.mean_ms
            );
            assert!(
                (s.lte.mean_ms - lte_mean).abs() / lte_mean < 0.15,
                "{operator} LTE {}",
                s.lte.mean_ms
            );
            assert!(s.lte.mean_ms < s.threeg.mean_ms, "LTE beats 3G");
            assert_eq!(s.threeg_hourly.len(), 24);
        }
    }
}
