//! Placement-policy sweep for the datacenter-backed bill stage: the same
//! Zipf-skewed fleet billed against simulated hosts under first-fit,
//! best-fit and worst-fit placement, with an arithmetic-billing baseline in
//! lockstep.
//!
//! The sweep exists to demonstrate two contracts of the datacenter
//! refactor at once:
//!
//! * **determinism** — all four engines consume the identical
//!   [`TenantMix::zipf`] stream slot by slot, and their forecasts are
//!   compared after **every** slot; per-slot billed cost is the identical
//!   arithmetic expression on every arm, so total cost must agree bit for
//!   bit across the baseline and all three policies;
//! * **the policy tradeoff** — at equal cost, a consolidating policy
//!   (best-fit) powers fewer hosts but co-locates instances (lower energy,
//!   higher modeled latency), while a spreading policy (worst-fit) powers
//!   more hosts for lower latency. The gate requires the energy spread to
//!   be measurable.
//!
//! `cargo run --release -p mca-bench --bin bench_datacenter` regenerates
//! `BENCH_datacenter.json` at the repository root; `--smoke` runs the small
//! CI shape and gates on both contracts.

use mca_cloudsim::{DatacenterConfig, PlacementKind};
use mca_fleet::FleetEngine;
use mca_workload::TenantMix;
use std::fmt::Write as _;
use std::time::Instant;

/// Shape of the Zipf-skewed placement-sweep workload.
#[derive(Debug, Clone, Copy)]
pub struct DatacenterWorkload {
    /// Number of shards each engine runs.
    pub shards: usize,
    /// Number of tenants, Zipf-sized.
    pub tenants: usize,
    /// The Zipf exponent `s` of [`TenantMix::zipf`].
    pub zipf_s: f64,
    /// Users of the heaviest tenant (tenant 0).
    pub max_users: usize,
    /// Number of provisioning slots.
    pub slots: usize,
    /// Thread count of every engine.
    pub threads: usize,
}

impl DatacenterWorkload {
    /// The acceptance-bar configuration.
    pub fn headline() -> Self {
        Self {
            shards: 7,
            tenants: 24,
            zipf_s: 0.8,
            max_users: 400,
            slots: 300,
            threads: 4,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            shards: 5,
            tenants: 12,
            zipf_s: 0.8,
            max_users: 150,
            slots: 72,
            threads: 2,
        }
    }
}

/// One arm's end-of-run accounting, straight off its `FleetMetrics` rollup.
#[derive(Debug, Clone, Copy)]
pub struct PolicyOutcome {
    /// The placement policy this arm billed under.
    pub placement: PlacementKind,
    /// Total billed cost, USD — must agree bit for bit with every other arm.
    pub total_cost: f64,
    /// Slots where a group's observed demand exceeded its standing capacity
    /// or its modeled response blew the target.
    pub sla_violations: usize,
    /// Users beyond admission capacity across all violating slots.
    pub sla_dropped_users: usize,
    /// Summed worst-case modeled response times, ms.
    pub sla_latency_ms: f64,
    /// Energy metered across the fleet's active hosts, watt-hours.
    pub energy_wh: f64,
    /// Instances placed onto hosts, summed over slots.
    pub placed_instance_slots: usize,
    /// Allocations no host could fit (must be zero on this workload).
    pub placement_failures: usize,
    /// Mean wall-clock ms per slot of this arm's lockstep drive.
    pub ms_per_slot: f64,
}

/// Measurements of one placement sweep.
#[derive(Debug, Clone)]
pub struct DatacenterBenchReport {
    /// The workload shape measured.
    pub workload: DatacenterWorkload,
    /// The host shape every datacenter arm ran (per tenant).
    pub datacenter: DatacenterConfig,
    /// Whether every arm's forecasts matched the arithmetic baseline after
    /// every slot.
    pub forecasts_identical: bool,
    /// Whether every arm's total cost matched the baseline bit for bit.
    pub costs_identical: bool,
    /// The arithmetic baseline's total billed cost, USD.
    pub arithmetic_cost: f64,
    /// The baseline's mean wall-clock ms per slot.
    pub arithmetic_ms_per_slot: f64,
    /// One outcome per placement policy, in [`PlacementKind::ALL`] order.
    pub outcomes: Vec<PolicyOutcome>,
}

impl DatacenterBenchReport {
    /// The outcome of one policy arm.
    pub fn outcome(&self, placement: PlacementKind) -> &PolicyOutcome {
        self.outcomes
            .iter()
            .find(|o| o.placement == placement)
            .expect("the sweep runs every placement policy")
    }

    /// Worst-fit energy over best-fit energy: the spread the consolidation
    /// tradeoff produces at equal cost. Greater than 1 when consolidation
    /// actually powers down hosts.
    pub fn energy_spread(&self) -> f64 {
        self.outcome(PlacementKind::WorstFit).energy_wh
            / self.outcome(PlacementKind::BestFit).energy_wh
    }

    /// Best-fit modeled latency over worst-fit: the co-location price of
    /// consolidating. Greater than 1 when packed hosts slow their tenants.
    pub fn latency_spread(&self) -> f64 {
        self.outcome(PlacementKind::BestFit).sla_latency_ms
            / self.outcome(PlacementKind::WorstFit).sla_latency_ms
    }

    /// True when no arm failed a placement.
    pub fn no_placement_failures(&self) -> bool {
        self.outcomes.iter().all(|o| o.placement_failures == 0)
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let mut policies = String::new();
        for (index, outcome) in self.outcomes.iter().enumerate() {
            let _ = write!(
                policies,
                "{}\n    {{\"placement\": \"{}\", \"total_cost\": {:.6}, \
                 \"sla_violations\": {}, \"sla_dropped_users\": {}, \
                 \"sla_latency_ms\": {:.3}, \"energy_wh\": {:.3}, \
                 \"placed_instance_slots\": {}, \"placement_failures\": {}, \
                 \"ms_per_slot\": {:.4}}}",
                if index > 0 { "," } else { "" },
                outcome.placement.label(),
                outcome.total_cost,
                outcome.sla_violations,
                outcome.sla_dropped_users,
                outcome.sla_latency_ms,
                outcome.energy_wh,
                outcome.placed_instance_slots,
                outcome.placement_failures,
                outcome.ms_per_slot,
            );
        }
        format!(
            "{{\n  \"benchmark\": \"datacenter_placement\",\n  \"tenants\": {},\n  \
             \"slots\": {},\n  \"max_users\": {},\n  \"zipf_s\": {:.2},\n  \
             \"shards\": {},\n  \"threads\": {},\n  \"hosts_per_tenant\": {},\n  \
             \"host_vcpus\": {},\n  \"host_memory_gib\": {:.1},\n  \
             \"forecasts_identical\": {},\n  \"costs_identical\": {},\n  \
             \"arithmetic_cost\": {:.6},\n  \"arithmetic_ms_per_slot\": {:.4},\n  \
             \"energy_spread\": {:.4},\n  \"latency_spread\": {:.4},\n  \
             \"policies\": [{}\n  ]\n}}\n",
            self.workload.tenants,
            self.workload.slots,
            self.workload.max_users,
            self.workload.zipf_s,
            self.workload.shards,
            self.workload.threads,
            self.datacenter.hosts,
            self.datacenter.host_vcpus,
            self.datacenter.host_memory_gib,
            self.forecasts_identical,
            self.costs_identical,
            self.arithmetic_cost,
            self.arithmetic_ms_per_slot,
            self.energy_spread(),
            self.latency_spread(),
            policies,
        )
    }
}

/// Runs the sweep: an arithmetic-billing baseline plus one datacenter-billed
/// engine per placement policy, all consuming the identical Zipf mix in
/// lockstep with forecasts compared after every slot.
pub fn run(workload: &DatacenterWorkload, seed: u64) -> DatacenterBenchReport {
    let base = crate::fleet::bench_config();
    let datacenter = DatacenterConfig::paper_default();
    let mix = TenantMix::zipf(
        workload.tenants,
        workload.max_users,
        workload.zipf_s,
        base.groups.ids(),
        seed,
    );

    let build = |config: mca_core::SystemConfig| {
        let mut engine =
            FleetEngine::new(config, workload.shards, seed).with_threads(workload.threads);
        engine.add_tenants(mix.tenant_ids());
        engine
    };
    let mut baseline = build(base.clone());
    let mut arms: Vec<(PlacementKind, FleetEngine)> = PlacementKind::ALL
        .into_iter()
        .map(|placement| {
            (
                placement,
                build(
                    base.clone()
                        .with_datacenter(datacenter.with_placement(placement)),
                ),
            )
        })
        .collect();

    let mut forecasts_identical = true;
    let mut baseline_ms = 0.0f64;
    let mut arm_ms = vec![0.0f64; arms.len()];
    for _ in 0..workload.slots {
        let start = Instant::now();
        baseline
            .try_tick_mix(&mix)
            .expect("every hosted tenant is in the mix");
        baseline_ms += start.elapsed().as_secs_f64() * 1_000.0;
        let reference = baseline.forecasts();
        for (index, (_, engine)) in arms.iter_mut().enumerate() {
            let start = Instant::now();
            engine
                .try_tick_mix(&mix)
                .expect("every hosted tenant is in the mix");
            arm_ms[index] += start.elapsed().as_secs_f64() * 1_000.0;
            if engine.forecasts() != reference {
                forecasts_identical = false;
            }
        }
    }

    let arithmetic_cost = baseline.metrics().total_cost;
    let mut costs_identical = true;
    let outcomes: Vec<PolicyOutcome> = arms
        .iter()
        .zip(&arm_ms)
        .map(|((placement, engine), ms)| {
            let metrics = engine.metrics();
            if metrics.total_cost.to_bits() != arithmetic_cost.to_bits() {
                costs_identical = false;
            }
            PolicyOutcome {
                placement: *placement,
                total_cost: metrics.total_cost,
                sla_violations: metrics.total_sla_violations,
                sla_dropped_users: metrics.total_sla_dropped_users,
                sla_latency_ms: metrics.total_sla_latency_ms,
                energy_wh: metrics.total_energy_wh,
                placed_instance_slots: metrics.total_placed_instance_slots,
                placement_failures: metrics.total_placement_failures,
                ms_per_slot: ms / workload.slots as f64,
            }
        })
        .collect();

    DatacenterBenchReport {
        workload: *workload,
        datacenter,
        forecasts_identical,
        costs_identical,
        arithmetic_cost,
        arithmetic_ms_per_slot: baseline_ms / workload.slots as f64,
        outcomes,
    }
}

/// Prints the sweep as an aligned table.
pub fn print(report: &DatacenterBenchReport) {
    println!(
        "datacenter placement sweep: zipf (s={:.1}) over {} tenants x {} slots, \
         {} shards, {} thread(s), {} hosts/tenant ({} vcpus each)",
        report.workload.zipf_s,
        report.workload.tenants,
        report.workload.slots,
        report.workload.shards,
        report.workload.threads,
        report.datacenter.hosts,
        report.datacenter.host_vcpus,
    );
    println!(
        "  {:<12} {:>12} {:>8} {:>9} {:>14} {:>12} {:>8} {:>10}",
        "policy", "cost $", "viol", "dropped", "latency ms", "energy wh", "fails", "ms/slot"
    );
    println!(
        "  {:<12} {:>12.4} {:>8} {:>9} {:>14} {:>12} {:>8} {:>10.3}",
        "arithmetic",
        report.arithmetic_cost,
        "-",
        "-",
        "-",
        "-",
        "-",
        report.arithmetic_ms_per_slot,
    );
    for outcome in &report.outcomes {
        println!(
            "  {:<12} {:>12.4} {:>8} {:>9} {:>14.1} {:>12.1} {:>8} {:>10.3}",
            outcome.placement.label(),
            outcome.total_cost,
            outcome.sla_violations,
            outcome.sla_dropped_users,
            outcome.sla_latency_ms,
            outcome.energy_wh,
            outcome.placement_failures,
            outcome.ms_per_slot,
        );
    }
    println!(
        "  forecasts identical every slot: {}; costs bit-identical: {}",
        report.forecasts_identical, report.costs_identical,
    );
    println!(
        "  consolidation tradeoff at equal cost: worst-fit meters {:.2}x the energy of \
         best-fit; best-fit models {:.2}x the latency of worst-fit",
        report.energy_spread(),
        report.latency_spread(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatacenterWorkload {
        DatacenterWorkload {
            shards: 3,
            tenants: 6,
            zipf_s: 0.8,
            max_users: 60,
            slots: 16,
            threads: 2,
        }
    }

    #[test]
    fn sweep_holds_cost_identity_and_shows_the_energy_tradeoff() {
        let report = run(&tiny(), crate::DEFAULT_SEED);
        assert!(report.forecasts_identical);
        assert!(report.costs_identical);
        assert!(report.no_placement_failures());
        assert_eq!(report.outcomes.len(), 3);
        for outcome in &report.outcomes {
            assert_eq!(
                outcome.total_cost.to_bits(),
                report.arithmetic_cost.to_bits()
            );
            assert!(outcome.energy_wh > 0.0);
            assert!(outcome.placed_instance_slots > 0);
        }
        assert!(
            report.energy_spread() >= 1.0,
            "spreading can never meter less energy than consolidating"
        );
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let report = run(&tiny(), crate::DEFAULT_SEED);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"datacenter_placement\""));
        assert!(json.contains("\"placement\": \"first-fit\""));
        assert!(json.contains("\"placement\": \"worst-fit\""));
        mca_telemetry::json::parse(&json).expect("the sweep report is valid JSON");
    }
}
