//! Performance harness for the multi-tenant fleet engine: the sharded,
//! batch-ingesting parallel tick of `mca-fleet` versus the sequential
//! single-shard loop the pre-fleet architecture would run.
//!
//! Both paths consume the **identical** interleaved arrival batch every
//! slot and run the identical score→learn→predict→allocate→bill cycle
//! ([`mca_fleet::TenantShard::tick`]); they differ exactly where the
//! architectures differ:
//!
//! * the **single-shard baseline** merges every tenant into one slot
//!   history, ingesting the batch through [`TimeSlot::assign`]'s per-record
//!   ordered insert (`O(n)` per out-of-order user — and a multi-tenant
//!   arrival stream is almost entirely out of order), then runs one
//!   predict→allocate cycle over the merged knowledge base;
//! * the **fleet** buckets the batch by shard in one pass, builds each
//!   tenant's slot with one sort + dedup ([`mca_core::TimeSlotBuilder`])
//!   and ticks every tenant's own predictor/allocator in parallel.
//!
//! Alongside the timing comparison the harness replays every tenant
//! **alone** (a bare [`TenantShard`], no engine) on the same records and
//! asserts the fleet's per-tenant forecasts are bit-identical, slot by
//! slot. The fleet side is driven through the streaming ingestion API — a
//! [`FleetDriver`] over a live [`SlotBatchSource`] lane, the path a real
//! front-end feeds — so the measured cost includes the driver multiplexing.
//! The headline configuration is 64 tenants × 2,000 slots; `cargo run
//! --release -p mca-bench --bin bench_fleet` regenerates `BENCH_fleet.json`
//! at the repository root.

use mca_core::{AllocationPolicy, IndexPolicy, SystemConfig, TimeSlot, TimeSlotBuilder};
use mca_fleet::{
    FleetDriver, FleetEngine, FleetTelemetry, SlotBatchSource, SlotRecord, TelemetryMode,
    TenantShard,
};
use mca_offload::{AccelerationGroupId, TenantId, UserId};
use mca_telemetry::{json, json_snapshot, prometheus_text, SNAPSHOT_VERSION};
use mca_workload::TenantMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Knowledge-base window of the benchmark configuration: a week of hourly
/// slots, the regime a long-running deployment operates in.
pub const HISTORY_WINDOW: usize = 168;

/// Shape of the synthetic fleet workload.
#[derive(Debug, Clone, Copy)]
pub struct FleetWorkload {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of provisioning slots.
    pub slots: usize,
    /// Nominal users per tenant per slot (the mix varies per tenant and
    /// slot: steady / ramp / doubling shapes).
    pub users_per_tenant: usize,
}

impl FleetWorkload {
    /// The acceptance-bar configuration: 64 tenants × 2,000 slots.
    pub fn headline() -> Self {
        Self {
            tenants: 64,
            slots: 2_000,
            users_per_tenant: 800,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            tenants: 16,
            slots: 200,
            users_per_tenant: 800,
        }
    }
}

/// The shared system configuration of both timed paths. Allocation uses
/// the greedy policy on both sides so the comparison isolates the ingest
/// and prediction engine rather than ILP solve time. The timed paths scan
/// linearly: at a 168-slot window the pruned scan is already microseconds,
/// so per-observe index maintenance would cost both sides more than it
/// saves (that regime is exactly why `IndexPolicy` defaults the index off
/// below 4096 retained slots). The tenant-alone reference replicas run
/// indexed instead — see [`reference_config`].
pub fn bench_config() -> SystemConfig {
    SystemConfig::paper_three_groups()
        .with_history_window(HISTORY_WINDOW)
        .with_allocation_policy(AllocationPolicy::GreedyCheapest)
        .with_index_policy(IndexPolicy::linear())
}

/// The configuration of the tenant-alone bit-identity replicas: identical
/// to [`bench_config`] except the vantage-point index is forced on (built
/// once a tenant retains 64 slots, well inside the 168-slot window). The
/// per-slot forecast comparison therefore proves indexed and linear scans
/// agree bit-for-bit across every tenant and every slot of continuous
/// windowed eviction — a stronger exercise of the indexed path than
/// running the same policy on both sides.
pub fn reference_config() -> SystemConfig {
    bench_config().with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(64))
}

/// Measurements of one fleet-versus-single-shard comparison.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// The workload shape measured.
    pub workload: FleetWorkload,
    /// Shards the fleet engine ran with.
    pub shards: usize,
    /// Threads the fleet tick ran with.
    pub threads: usize,
    /// Mean wall-clock time of one single-shard slot (ingest + tick), ms.
    pub single_ms_per_slot: f64,
    /// Mean wall-clock time of one fleet slot (ingest + parallel tick), ms.
    pub fleet_ms_per_slot: f64,
    /// Whether every per-tenant fleet forecast matched the tenant-alone
    /// replay bit for bit, every slot.
    pub forecasts_identical: bool,
    /// The fleet engine's telemetry snapshot at the end of the run: per-slot
    /// tick latency tails, stage histograms and per-shard load.
    pub telemetry: FleetTelemetry,
}

impl FleetBenchReport {
    /// Single-shard time over fleet time.
    pub fn speedup(&self) -> f64 {
        self.single_ms_per_slot / self.fleet_ms_per_slot
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let slot = &self.telemetry.slot;
        let mut shard_loads = String::new();
        for (index, shard) in self.telemetry.shards.iter().enumerate() {
            let _ = write!(
                shard_loads,
                "{}\n    {{\"shard\": {}, \"tenants\": {}, \"ticks\": {}, \"records\": {}, \
                 \"load_ewma\": {:.4}, \"tick_ewma_ns\": {:.1}, \"tick_p99_ns\": {}}}",
                if index > 0 { "," } else { "" },
                shard.shard,
                shard.tenants,
                shard.ticks,
                shard.records,
                shard.load_ewma,
                shard.tick_ewma_ns,
                shard.tick_p99_ns,
            );
        }
        format!(
            "{{\n  \"benchmark\": \"fleet_tick\",\n  \"tenants\": {},\n  \"slots\": {},\n  \
             \"users_per_tenant\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \
             \"history_window\": {},\n  \"single_shard_ms_per_slot\": {:.4},\n  \
             \"fleet_ms_per_slot\": {:.4},\n  \"speedup\": {:.2},\n  \
             \"forecasts_bit_identical\": {},\n  \
             \"slot_tick_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}},\n  \"shard_loads\": [{}\n  ]\n}}\n",
            self.workload.tenants,
            self.workload.slots,
            self.workload.users_per_tenant,
            self.shards,
            self.threads,
            HISTORY_WINDOW,
            self.single_ms_per_slot,
            self.fleet_ms_per_slot,
            self.speedup(),
            self.forecasts_identical,
            slot.count(),
            slot.p50(),
            slot.p99(),
            slot.p999(),
            slot.max(),
            shard_loads,
        )
    }
}

/// Interleaves the per-tenant records in a seeded random arrival order, the
/// way concurrent arrivals from many tenants reach a front-end: consecutive
/// records almost never belong to the same tenant or follow user-id order,
/// so an ordered-insert ingest pays its `O(n)` insert on nearly every
/// record.
fn interleave<R: Rng>(
    per_tenant: &[Vec<(AccelerationGroupId, UserId)>],
    rng: &mut R,
) -> Vec<SlotRecord> {
    let total: usize = per_tenant.iter().map(Vec::len).sum();
    let mut batch = Vec::with_capacity(total);
    for (t, records) in per_tenant.iter().enumerate() {
        for &(group, user) in records {
            batch.push(SlotRecord::new(TenantId(t as u32), group, user));
        }
    }
    // Fisher–Yates with the bench's deterministic rng
    for i in (1..batch.len()).rev() {
        batch.swap(i, rng.gen_range(0..i + 1));
    }
    batch
}

/// Times `slots` slots of the single-shard loop and the sharded fleet on
/// identical batches, verifying fleet forecasts against tenant-alone
/// replays throughout.
pub fn run(workload: &FleetWorkload, seed: u64) -> FleetBenchReport {
    let config = bench_config();
    let mix = TenantMix::heterogeneous(
        workload.tenants,
        workload.users_per_tenant,
        config.groups.ids(),
        seed,
    );

    // the single merged shard of the pre-fleet architecture
    let mut single = TenantShard::new(TenantId(u32::MAX), &config, seed);
    // the sharded fleet, driven through the streaming ingestion API: the
    // bench plays the front-end, pushing each slot's batch into the live
    // lane the driver drains
    let mut engine = FleetEngine::new(config.clone(), workload.tenants, seed);
    engine.add_tenants(mix.tenant_ids());
    let shards = engine.shard_count();
    let threads = engine.threads();
    let (feed, source) = SlotBatchSource::channel();
    let mut driver = FleetDriver::new(engine).with_shared_source(source);
    // each tenant alone: the bit-identity reference, run with the index
    // forced on so the comparison doubles as an indexed-vs-linear check
    let reference = reference_config();
    let mut alone: Vec<TenantShard> = mix
        .tenant_ids()
        .map(|t| TenantShard::new(t, &reference, seed))
        .collect();

    let mut streams: Vec<StdRng> = mix.tenant_ids().map(|t| mix.stream_for(t)).collect();
    let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut single_ms = 0.0f64;
    let mut fleet_ms = 0.0f64;
    let mut forecasts_identical = true;

    for slot in 0..workload.slots {
        // generation is shared by every path and excluded from the timings
        let per_tenant: Vec<Vec<(AccelerationGroupId, UserId)>> = mix
            .tenant_ids()
            .map(|t| mix.slot_records(t, slot, &mut streams[t.0 as usize]))
            .collect();
        let batch = interleave(&per_tenant, &mut arrival_rng);
        let now_ms = (slot + 1) as f64 * config.slot_length_ms;

        // single-shard loop: per-record ordered-insert ingest, one merged tick
        let start = Instant::now();
        let mut merged = TimeSlot::new(slot);
        for record in &batch {
            merged.assign(record.group, record.user);
        }
        single.tick(merged, now_ms);
        single_ms += start.elapsed().as_secs_f64() * 1_000.0;

        // fleet: live-lane push + driver step (bucketed batch ingest +
        // parallel per-shard tick)
        let start = Instant::now();
        feed.push_slot(batch);
        driver.step().expect("the shared lane never misroutes");
        fleet_ms += start.elapsed().as_secs_f64() * 1_000.0;

        // bit-identity: every tenant alone, same records (untimed)
        for (tenant, records) in alone.iter_mut().zip(&per_tenant) {
            let mut builder = TimeSlotBuilder::with_capacity(slot, records.len());
            builder.extend(records.iter().copied());
            tenant.tick(builder.build(), now_ms);
        }
        for ((_, fleet_forecast), tenant) in driver.engine().forecasts().iter().zip(&alone) {
            if fleet_forecast.as_ref() != tenant.forecast() {
                forecasts_identical = false;
            }
        }
    }

    FleetBenchReport {
        workload: *workload,
        shards,
        threads,
        single_ms_per_slot: single_ms / workload.slots as f64,
        fleet_ms_per_slot: fleet_ms / workload.slots as f64,
        forecasts_identical,
        telemetry: driver.engine().telemetry(),
    }
}

/// Prints the report as an aligned table.
pub fn print(report: &FleetBenchReport) {
    println!(
        "fleet tick over {} tenants x {} slots (~{} users/tenant), {} shards, {} thread(s)",
        report.workload.tenants,
        report.workload.slots,
        report.workload.users_per_tenant,
        report.shards,
        report.threads,
    );
    println!("  {:<32} {:>12}", "architecture", "ms/slot");
    println!(
        "  {:<32} {:>12.3}",
        "single shard, per-record ingest", report.single_ms_per_slot
    );
    println!(
        "  {:<32} {:>12.3}",
        "sharded fleet, batched ingest", report.fleet_ms_per_slot
    );
    println!("  speedup: {:.1}x", report.speedup());
    println!(
        "  per-tenant forecasts bit-identical to tenant-alone replay: {}",
        report.forecasts_identical
    );
    let slot = &report.telemetry.slot;
    if slot.count() > 0 {
        println!(
            "  slot tick latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
            slot.p50() as f64 / 1_000.0,
            slot.p99() as f64 / 1_000.0,
            slot.p999() as f64 / 1_000.0,
            slot.max() as f64 / 1_000.0,
        );
    }
    if !report.telemetry.shards.is_empty() {
        println!(
            "  {:<8} {:>8} {:>10} {:>12} {:>14} {:>14}",
            "shard", "tenants", "records", "load ewma", "tick ewma us", "tick p99 us"
        );
        for shard in &report.telemetry.shards {
            println!(
                "  {:<8} {:>8} {:>10} {:>12.1} {:>14.1} {:>14.1}",
                shard.shard,
                shard.tenants,
                shard.records,
                shard.load_ewma,
                shard.tick_ewma_ns / 1_000.0,
                shard.tick_p99_ns as f64 / 1_000.0,
            );
        }
    }
}

/// Absolute slack added to the telemetry-overhead gate, ms per slot. The
/// 3% relative bound is the real bar; on a smoke-sized workload a slot is a
/// few milliseconds, so scheduler jitter alone can swing two identical runs
/// past a bare percentage — the fixed slack absorbs that noise while still
/// failing on any per-record cost sneaking into the hot path.
pub const OVERHEAD_SLACK_MS: f64 = 0.25;

/// Relative telemetry-overhead bound: instrumented ticks may cost at most
/// this fraction more than uninstrumented ones.
pub const OVERHEAD_BOUND: f64 = 0.03;

/// Results and gate verdicts of the telemetry smoke run: one fleet pass
/// with monotonic telemetry, one with telemetry disabled, on identical
/// record streams.
#[derive(Debug, Clone)]
pub struct TelemetrySmokeReport {
    /// The workload shape measured.
    pub workload: FleetWorkload,
    /// Mean wall-clock time of one fleet slot with monotonic telemetry, ms.
    pub enabled_ms_per_slot: f64,
    /// Mean wall-clock time of one fleet slot with telemetry disabled, ms.
    pub disabled_ms_per_slot: f64,
    /// The instrumented engine's telemetry snapshot.
    pub telemetry: FleetTelemetry,
    /// The instrumented engine's registry as a versioned JSON snapshot.
    pub snapshot_json: String,
    /// Correctness-gate failures: histogram totals that disagree with event
    /// counts, or a snapshot that fails to round-trip. Empty on success.
    pub failures: Vec<String>,
    /// Whether the instrumented pass stayed within the overhead bound.
    pub overhead_within_bound: bool,
}

impl TelemetrySmokeReport {
    /// Instrumented cost over uninstrumented cost, as a percentage.
    pub fn overhead_percent(&self) -> f64 {
        (self.enabled_ms_per_slot / self.disabled_ms_per_slot - 1.0) * 100.0
    }

    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.overhead_within_bound
    }

    /// The report as a JSON object; `snapshot` embeds the registry snapshot
    /// verbatim (it is already JSON).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"fleet_telemetry\",\n  \"tenants\": {},\n  \"slots\": {},\n  \
             \"users_per_tenant\": {},\n  \"enabled_ms_per_slot\": {:.4},\n  \
             \"disabled_ms_per_slot\": {:.4},\n  \"overhead_percent\": {:.2},\n  \
             \"overhead_within_bound\": {},\n  \"checks_passed\": {},\n  \"snapshot\": {}\n}}\n",
            self.workload.tenants,
            self.workload.slots,
            self.workload.users_per_tenant,
            self.enabled_ms_per_slot,
            self.disabled_ms_per_slot,
            self.overhead_percent(),
            self.overhead_within_bound,
            self.failures.is_empty(),
            self.snapshot_json.trim_end(),
        )
    }
}

/// Drives the fleet path alone (no single-shard baseline, no tenant-alone
/// replicas) over the workload's record stream and returns the mean ms per
/// slot plus the driver for inspection.
fn drive_fleet(workload: &FleetWorkload, seed: u64, mode: TelemetryMode) -> (f64, FleetDriver) {
    let config = bench_config();
    let mix = TenantMix::heterogeneous(
        workload.tenants,
        workload.users_per_tenant,
        config.groups.ids(),
        seed,
    );
    let mut engine = FleetEngine::new(config, workload.tenants, seed).with_telemetry(mode);
    engine.add_tenants(mix.tenant_ids());
    let (feed, source) = SlotBatchSource::channel();
    let mut driver = FleetDriver::new(engine).with_shared_source(source);

    let mut streams: Vec<StdRng> = mix.tenant_ids().map(|t| mix.stream_for(t)).collect();
    let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut fleet_ms = 0.0f64;
    for slot in 0..workload.slots {
        let per_tenant: Vec<Vec<(AccelerationGroupId, UserId)>> = mix
            .tenant_ids()
            .map(|t| mix.slot_records(t, slot, &mut streams[t.0 as usize]))
            .collect();
        let batch = interleave(&per_tenant, &mut arrival_rng);
        let start = Instant::now();
        feed.push_slot(batch);
        driver.step().expect("the shared lane never misroutes");
        fleet_ms += start.elapsed().as_secs_f64() * 1_000.0;
    }
    (fleet_ms / workload.slots as f64, driver)
}

/// The telemetry smoke gate: proves the instrumentation layer's three
/// contracts on a live fleet run.
///
/// 1. **Histogram totals equal event counts** — the stage-count arithmetic
///    (`windowing == predict == tenant-ticks`, `allocate == allocations +
///    infeasible`, `bill == allocations`, `tick == shards × slots`, `slot ==
///    slots`) holds exactly; a missed or double-counted timer fails the gate.
/// 2. **The exposition round-trips** — the versioned JSON snapshot parses
///    with the in-tree parser, carries [`SNAPSHOT_VERSION`], and its
///    histogram counts agree with the live histograms; the Prometheus text
///    carries the slot-tick series.
/// 3. **The hot path stays cheap** — the instrumented pass costs at most
///    [`OVERHEAD_BOUND`] more than a telemetry-disabled pass over identical
///    records (plus [`OVERHEAD_SLACK_MS`] for timing noise).
pub fn telemetry_smoke(workload: &FleetWorkload, seed: u64) -> TelemetrySmokeReport {
    // a short untimed pass warms the allocator and the rayon pool so the
    // disabled-vs-enabled comparison does not charge warmup to either side
    let warmup = FleetWorkload {
        slots: workload.slots.min(16),
        ..*workload
    };
    drive_fleet(&warmup, seed, TelemetryMode::Disabled);

    let (disabled_ms, _) = drive_fleet(workload, seed, TelemetryMode::Disabled);
    let (enabled_ms, driver) = drive_fleet(workload, seed, TelemetryMode::Monotonic);

    let report = driver.report();
    let telemetry = report.telemetry.clone();
    let mut failures = Vec::new();
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            failures.push(format!("{name}: got {got}, want {want}"));
        }
    };

    let slots = workload.slots as u64;
    let shards = telemetry.shards.len() as u64;
    check("slot histogram count", telemetry.slot.count(), slots);
    check(
        "tick histogram count",
        telemetry.stages.tick.count(),
        shards * slots,
    );
    check(
        "windowing histogram count",
        telemetry.stages.windowing.count(),
        workload.tenants as u64 * slots,
    );
    check(
        "predict histogram count",
        telemetry.stages.predict.count(),
        telemetry.stages.windowing.count(),
    );
    check(
        "allocate histogram count",
        telemetry.stages.allocate.count(),
        (report.metrics.total_allocations + report.metrics.total_infeasible) as u64,
    );
    check(
        "bill histogram count",
        telemetry.stages.bill.count(),
        report.metrics.total_allocations as u64,
    );
    let staged: u64 = telemetry.shards.iter().map(|s| s.records).sum();
    check(
        "records staged across shards",
        staged,
        report.records as u64,
    );

    let registry = driver.engine().telemetry_registry();
    let snapshot_json = json_snapshot(&registry);
    match json::parse(&snapshot_json) {
        Err(error) => failures.push(format!("snapshot does not parse: {error}")),
        Ok(doc) => {
            if doc.get("version").and_then(|v| v.as_u64()) != Some(SNAPSHOT_VERSION) {
                failures.push(format!("snapshot version is not {SNAPSHOT_VERSION}"));
            }
            let hist_count = |name: &str| {
                doc.get("histograms")
                    .and_then(|h| h.get(name))
                    .and_then(|h| h.get("count"))
                    .and_then(|c| c.as_u64())
            };
            if hist_count("fleet_slot_tick_ns") != Some(telemetry.slot.count()) {
                failures.push("snapshot fleet_slot_tick_ns count disagrees".to_string());
            }
            let counter = |name: &str| {
                doc.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(|c| c.as_u64())
            };
            if counter("fleet_records_total") != Some(report.records as u64) {
                failures.push("snapshot fleet_records_total disagrees".to_string());
            }
        }
    }
    if !prometheus_text(&registry).contains("fleet_slot_tick_ns_count") {
        failures.push("prometheus text is missing the slot-tick series".to_string());
    }

    let overhead_within_bound =
        enabled_ms <= disabled_ms * (1.0 + OVERHEAD_BOUND) + OVERHEAD_SLACK_MS;

    TelemetrySmokeReport {
        workload: *workload,
        enabled_ms_per_slot: enabled_ms,
        disabled_ms_per_slot: disabled_ms,
        telemetry,
        snapshot_json,
        failures,
        overhead_within_bound,
    }
}

/// Prints the telemetry smoke verdicts as an aligned table.
pub fn print_telemetry_smoke(report: &TelemetrySmokeReport) {
    println!(
        "\ntelemetry smoke over {} tenants x {} slots",
        report.workload.tenants, report.workload.slots
    );
    println!("  {:<32} {:>12}", "fleet path", "ms/slot");
    println!(
        "  {:<32} {:>12.3}",
        "telemetry disabled", report.disabled_ms_per_slot
    );
    println!(
        "  {:<32} {:>12.3}",
        "telemetry enabled (monotonic)", report.enabled_ms_per_slot
    );
    println!(
        "  overhead: {:+.2}% (bound {:.0}% + {:.2} ms slack) -> {}",
        report.overhead_percent(),
        OVERHEAD_BOUND * 100.0,
        OVERHEAD_SLACK_MS,
        if report.overhead_within_bound {
            "ok"
        } else {
            "EXCEEDED"
        },
    );
    if report.failures.is_empty() {
        println!("  histogram totals equal event counts; snapshot round-trips: ok");
    } else {
        for failure in &report.failures {
            println!("  FAILED: {failure}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_bench_verifies_bit_identity() {
        let workload = FleetWorkload {
            tenants: 6,
            slots: 12,
            users_per_tenant: 20,
        };
        let report = run(&workload, crate::DEFAULT_SEED);
        assert!(report.forecasts_identical);
        assert!(report.single_ms_per_slot > 0.0 && report.fleet_ms_per_slot > 0.0);
        // the engine defaults to monotonic telemetry, so the bench report
        // carries real tail latencies and per-shard load
        assert_eq!(report.telemetry.slot.count(), 12);
        assert!(report.telemetry.slot.p99() > 0);
        assert_eq!(report.telemetry.shards.len(), report.shards);
        let json = report.to_json();
        assert!(json.contains("\"tenants\": 6"));
        assert!(json.contains("\"forecasts_bit_identical\": true"));
        assert!(json.contains("\"slot_tick_ns\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"shard_loads\""));
        assert!(json.contains("\"load_ewma\""));
    }

    #[test]
    fn telemetry_smoke_gates_pass_on_a_small_fleet() {
        let workload = FleetWorkload {
            tenants: 6,
            slots: 12,
            users_per_tenant: 20,
        };
        let report = telemetry_smoke(&workload, crate::DEFAULT_SEED);
        // the correctness gates are deterministic; the overhead gate is a
        // wall-clock comparison and is only asserted at smoke scale in CI
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.telemetry.slot.count(), 12);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"fleet_telemetry\""));
        assert!(json.contains("\"snapshot\": {\"version\":1,"));
        mca_telemetry::json::parse(&json).expect("the telemetry report is valid JSON");
    }

    #[test]
    fn interleaving_preserves_every_record() {
        let per_tenant = vec![
            vec![(AccelerationGroupId(1), UserId(1)); 3],
            vec![(AccelerationGroupId(1), UserId(1_000_001)); 5],
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let batch = interleave(&per_tenant, &mut rng);
        assert_eq!(batch.len(), 8);
        assert_eq!(batch.iter().filter(|r| r.tenant == TenantId(0)).count(), 3);
        assert_eq!(batch.iter().filter(|r| r.tenant == TenantId(1)).count(), 5);
    }
}
