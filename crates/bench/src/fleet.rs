//! Performance harness for the multi-tenant fleet engine: the sharded,
//! batch-ingesting parallel tick of `mca-fleet` versus the sequential
//! single-shard loop the pre-fleet architecture would run.
//!
//! Both paths consume the **identical** interleaved arrival batch every
//! slot and run the identical score→learn→predict→allocate→bill cycle
//! ([`mca_fleet::TenantShard::tick`]); they differ exactly where the
//! architectures differ:
//!
//! * the **single-shard baseline** merges every tenant into one slot
//!   history, ingesting the batch through [`TimeSlot::assign`]'s per-record
//!   ordered insert (`O(n)` per out-of-order user — and a multi-tenant
//!   arrival stream is almost entirely out of order), then runs one
//!   predict→allocate cycle over the merged knowledge base;
//! * the **fleet** buckets the batch by shard in one pass, builds each
//!   tenant's slot with one sort + dedup ([`mca_core::TimeSlotBuilder`])
//!   and ticks every tenant's own predictor/allocator in parallel.
//!
//! Alongside the timing comparison the harness replays every tenant
//! **alone** (a bare [`TenantShard`], no engine) on the same records and
//! asserts the fleet's per-tenant forecasts are bit-identical, slot by
//! slot. The fleet side is driven through the streaming ingestion API — a
//! [`FleetDriver`] over a live [`SlotBatchSource`] lane, the path a real
//! front-end feeds — so the measured cost includes the driver multiplexing.
//! The headline configuration is 64 tenants × 2,000 slots; `cargo run
//! --release -p mca-bench --bin bench_fleet` regenerates `BENCH_fleet.json`
//! at the repository root.

use mca_core::{AllocationPolicy, IndexPolicy, SystemConfig, TimeSlot, TimeSlotBuilder};
use mca_fleet::{
    FleetDriver, FleetEngine, FleetTelemetry, RebalancerConfig, SlotBatchSource, SlotRecord,
    TelemetryMode, TenantShard,
};
use mca_offload::{AccelerationGroupId, TenantId, UserId};
use mca_telemetry::{json, json_snapshot, prometheus_text, SNAPSHOT_VERSION};
use mca_workload::TenantMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Knowledge-base window of the benchmark configuration: a week of hourly
/// slots, the regime a long-running deployment operates in.
pub const HISTORY_WINDOW: usize = 168;

/// Shape of the synthetic fleet workload.
#[derive(Debug, Clone, Copy)]
pub struct FleetWorkload {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of provisioning slots.
    pub slots: usize,
    /// Nominal users per tenant per slot (the mix varies per tenant and
    /// slot: steady / ramp / doubling shapes).
    pub users_per_tenant: usize,
}

impl FleetWorkload {
    /// The acceptance-bar configuration: 64 tenants × 2,000 slots.
    pub fn headline() -> Self {
        Self {
            tenants: 64,
            slots: 2_000,
            users_per_tenant: 800,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            tenants: 16,
            slots: 200,
            users_per_tenant: 800,
        }
    }
}

/// The shared system configuration of both timed paths. Allocation uses
/// the greedy policy on both sides so the comparison isolates the ingest
/// and prediction engine rather than ILP solve time. The timed paths scan
/// linearly: at a 168-slot window the pruned scan is already microseconds,
/// so per-observe index maintenance would cost both sides more than it
/// saves (that regime is exactly why `IndexPolicy` defaults the index off
/// below 4096 retained slots). The tenant-alone reference replicas run
/// indexed instead — see [`reference_config`].
pub fn bench_config() -> SystemConfig {
    SystemConfig::paper_three_groups()
        .with_history_window(HISTORY_WINDOW)
        .with_allocation_policy(AllocationPolicy::GreedyCheapest)
        .with_index_policy(IndexPolicy::linear())
}

/// The configuration of the tenant-alone bit-identity replicas: identical
/// to [`bench_config`] except the vantage-point index is forced on (built
/// once a tenant retains 64 slots, well inside the 168-slot window). The
/// per-slot forecast comparison therefore proves indexed and linear scans
/// agree bit-for-bit across every tenant and every slot of continuous
/// windowed eviction — a stronger exercise of the indexed path than
/// running the same policy on both sides.
pub fn reference_config() -> SystemConfig {
    bench_config().with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(64))
}

/// Measurements of one fleet-versus-single-shard comparison.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// The workload shape measured.
    pub workload: FleetWorkload,
    /// Shards the fleet engine ran with.
    pub shards: usize,
    /// Threads the fleet tick ran with.
    pub threads: usize,
    /// Mean wall-clock time of one single-shard slot (ingest + tick), ms.
    pub single_ms_per_slot: f64,
    /// Mean wall-clock time of one fleet slot (ingest + parallel tick), ms.
    pub fleet_ms_per_slot: f64,
    /// Whether every per-tenant fleet forecast matched the tenant-alone
    /// replay bit for bit, every slot.
    pub forecasts_identical: bool,
    /// The fleet engine's telemetry snapshot at the end of the run: per-slot
    /// tick latency tails, stage histograms and per-shard load.
    pub telemetry: FleetTelemetry,
}

impl FleetBenchReport {
    /// Single-shard time over fleet time.
    pub fn speedup(&self) -> f64 {
        self.single_ms_per_slot / self.fleet_ms_per_slot
    }

    /// The report's fields, without the enclosing braces, so the caller can
    /// append sibling sections ([`FleetBenchReport::to_json_with_skew`]).
    fn json_fields(&self) -> String {
        let slot = &self.telemetry.slot;
        let mut shard_loads = String::new();
        for (index, shard) in self.telemetry.shards.iter().enumerate() {
            let _ = write!(
                shard_loads,
                "{}\n    {{\"shard\": {}, \"tenants\": {}, \"ticks\": {}, \"records\": {}, \
                 \"load_ewma\": {:.4}, \"tick_ewma_ns\": {:.1}, \"tick_p99_ns\": {}}}",
                if index > 0 { "," } else { "" },
                shard.shard,
                shard.tenants,
                shard.ticks,
                shard.records,
                shard.load_ewma,
                shard.tick_ewma_ns,
                shard.tick_p99_ns,
            );
        }
        format!(
            "  \"benchmark\": \"fleet_tick\",\n  \"tenants\": {},\n  \"slots\": {},\n  \
             \"users_per_tenant\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \
             \"history_window\": {},\n  \"single_shard_ms_per_slot\": {:.4},\n  \
             \"fleet_ms_per_slot\": {:.4},\n  \"speedup\": {:.2},\n  \
             \"forecasts_bit_identical\": {},\n  \
             \"slot_tick_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}},\n  \"shard_loads\": [{}\n  ]",
            self.workload.tenants,
            self.workload.slots,
            self.workload.users_per_tenant,
            self.shards,
            self.threads,
            HISTORY_WINDOW,
            self.single_ms_per_slot,
            self.fleet_ms_per_slot,
            self.speedup(),
            self.forecasts_identical,
            slot.count(),
            slot.p50(),
            slot.p99(),
            slot.p999(),
            slot.max(),
            shard_loads,
        )
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        format!("{{\n{}\n}}\n", self.json_fields())
    }

    /// The report as a JSON object with the Zipf-skew comparison embedded as
    /// a `skewed` section — the shape `BENCH_fleet.json` records.
    pub fn to_json_with_skew(&self, skew: &SkewBenchReport) -> String {
        format!(
            "{{\n{},\n  \"skewed\": {}\n}}\n",
            self.json_fields(),
            skew.json_object()
        )
    }
}

/// Interleaves the per-tenant records in a seeded random arrival order, the
/// way concurrent arrivals from many tenants reach a front-end: consecutive
/// records almost never belong to the same tenant or follow user-id order,
/// so an ordered-insert ingest pays its `O(n)` insert on nearly every
/// record.
fn interleave<R: Rng>(
    per_tenant: &[Vec<(AccelerationGroupId, UserId)>],
    rng: &mut R,
) -> Vec<SlotRecord> {
    let total: usize = per_tenant.iter().map(Vec::len).sum();
    let mut batch = Vec::with_capacity(total);
    for (t, records) in per_tenant.iter().enumerate() {
        for &(group, user) in records {
            batch.push(SlotRecord::new(TenantId(t as u32), group, user));
        }
    }
    // Fisher–Yates with the bench's deterministic rng
    for i in (1..batch.len()).rev() {
        batch.swap(i, rng.gen_range(0..i + 1));
    }
    batch
}

/// Times `slots` slots of the single-shard loop and the sharded fleet on
/// identical batches, verifying fleet forecasts against tenant-alone
/// replays throughout.
pub fn run(workload: &FleetWorkload, seed: u64) -> FleetBenchReport {
    let config = bench_config();
    let mix = TenantMix::heterogeneous(
        workload.tenants,
        workload.users_per_tenant,
        config.groups.ids(),
        seed,
    );

    // the single merged shard of the pre-fleet architecture
    let mut single = TenantShard::new(TenantId(u32::MAX), &config, seed);
    // the sharded fleet, driven through the streaming ingestion API: the
    // bench plays the front-end, pushing each slot's batch into the live
    // lane the driver drains
    let mut engine = FleetEngine::new(config.clone(), workload.tenants, seed);
    engine.add_tenants(mix.tenant_ids());
    let shards = engine.shard_count();
    let threads = engine.threads();
    let (feed, source) = SlotBatchSource::channel();
    let mut driver = FleetDriver::new(engine).with_shared_source(source);
    // each tenant alone: the bit-identity reference, run with the index
    // forced on so the comparison doubles as an indexed-vs-linear check
    let reference = reference_config();
    let mut alone: Vec<TenantShard> = mix
        .tenant_ids()
        .map(|t| TenantShard::new(t, &reference, seed))
        .collect();

    let mut streams: Vec<StdRng> = mix.tenant_ids().map(|t| mix.stream_for(t)).collect();
    let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut single_ms = 0.0f64;
    let mut fleet_ms = 0.0f64;
    let mut forecasts_identical = true;

    for slot in 0..workload.slots {
        // generation is shared by every path and excluded from the timings
        let per_tenant: Vec<Vec<(AccelerationGroupId, UserId)>> = mix
            .tenant_ids()
            .map(|t| mix.slot_records(t, slot, &mut streams[t.0 as usize]))
            .collect();
        let batch = interleave(&per_tenant, &mut arrival_rng);
        let now_ms = (slot + 1) as f64 * config.slot_length_ms;

        // single-shard loop: per-record ordered-insert ingest, one merged tick
        let start = Instant::now();
        let mut merged = TimeSlot::new(slot);
        for record in &batch {
            merged.assign(record.group, record.user);
        }
        single.tick(merged, now_ms);
        single_ms += start.elapsed().as_secs_f64() * 1_000.0;

        // fleet: live-lane push + driver step (bucketed batch ingest +
        // parallel per-shard tick)
        let start = Instant::now();
        feed.push_slot(batch);
        driver.step().expect("the shared lane never misroutes");
        fleet_ms += start.elapsed().as_secs_f64() * 1_000.0;

        // bit-identity: every tenant alone, same records (untimed)
        for (tenant, records) in alone.iter_mut().zip(&per_tenant) {
            let mut builder = TimeSlotBuilder::with_capacity(slot, records.len());
            builder.extend(records.iter().copied());
            tenant.tick(builder.build(), now_ms);
        }
        for ((_, fleet_forecast), tenant) in driver.engine().forecasts().iter().zip(&alone) {
            if fleet_forecast.as_ref() != tenant.forecast() {
                forecasts_identical = false;
            }
        }
    }

    FleetBenchReport {
        workload: *workload,
        shards,
        threads,
        single_ms_per_slot: single_ms / workload.slots as f64,
        fleet_ms_per_slot: fleet_ms / workload.slots as f64,
        forecasts_identical,
        telemetry: driver.engine().telemetry(),
    }
}

/// Prints the report as an aligned table.
pub fn print(report: &FleetBenchReport) {
    println!(
        "fleet tick over {} tenants x {} slots (~{} users/tenant), {} shards, {} thread(s)",
        report.workload.tenants,
        report.workload.slots,
        report.workload.users_per_tenant,
        report.shards,
        report.threads,
    );
    println!("  {:<32} {:>12}", "architecture", "ms/slot");
    println!(
        "  {:<32} {:>12.3}",
        "single shard, per-record ingest", report.single_ms_per_slot
    );
    println!(
        "  {:<32} {:>12.3}",
        "sharded fleet, batched ingest", report.fleet_ms_per_slot
    );
    println!("  speedup: {:.1}x", report.speedup());
    println!(
        "  per-tenant forecasts bit-identical to tenant-alone replay: {}",
        report.forecasts_identical
    );
    let slot = &report.telemetry.slot;
    if slot.count() > 0 {
        println!(
            "  slot tick latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
            slot.p50() as f64 / 1_000.0,
            slot.p99() as f64 / 1_000.0,
            slot.p999() as f64 / 1_000.0,
            slot.max() as f64 / 1_000.0,
        );
    }
    if !report.telemetry.shards.is_empty() {
        println!(
            "  {:<8} {:>8} {:>10} {:>12} {:>14} {:>14}",
            "shard", "tenants", "records", "load ewma", "tick ewma us", "tick p99 us"
        );
        for shard in &report.telemetry.shards {
            println!(
                "  {:<8} {:>8} {:>10} {:>12.1} {:>14.1} {:>14.1}",
                shard.shard,
                shard.tenants,
                shard.records,
                shard.load_ewma,
                shard.tick_ewma_ns / 1_000.0,
                shard.tick_p99_ns as f64 / 1_000.0,
            );
        }
    }
}

/// Shape of the Zipf-skewed rebalancing workload: heavy-tailed tenant sizes
/// over a small shard count, the regime where static hash placement leaves
/// the fleet running at the speed of its hottest shard.
#[derive(Debug, Clone, Copy)]
pub struct SkewWorkload {
    /// Number of shards (deliberately small and coprime-ish with the tenant
    /// count, so the hash clumps heavy tenants).
    pub shards: usize,
    /// Number of tenants, Zipf-sized.
    pub tenants: usize,
    /// The Zipf exponent `s` of [`TenantMix::zipf`].
    pub zipf_s: f64,
    /// Users of the heaviest tenant (tenant 0).
    pub max_users: usize,
    /// Number of provisioning slots.
    pub slots: usize,
    /// The thread count the projected and measured comparisons target.
    pub threads: usize,
}

impl SkewWorkload {
    /// The acceptance-bar configuration.
    pub fn headline() -> Self {
        Self {
            shards: 7,
            tenants: 24,
            zipf_s: 0.8,
            max_users: 800,
            slots: 400,
            threads: 4,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            shards: 7,
            tenants: 16,
            zipf_s: 0.8,
            max_users: 300,
            slots: 120,
            threads: 4,
        }
    }
}

/// The rebalancer configuration the skew bench runs: trigger early (10 %
/// over the mean), one move per slot once the load EWMAs have seeded.
pub fn skew_rebalancer_config() -> RebalancerConfig {
    RebalancerConfig::default()
        .with_ratio(1.1)
        .with_warmup_slots(8)
}

/// Measurements of one static-placement-versus-rebalanced comparison on the
/// Zipf-skewed workload.
///
/// Three cost models, weakest hardware dependence first:
///
/// * **critical path** — per slot, the slowest shard tick (what the slot
///   would cost with one thread per shard); measured single-threaded, so it
///   is meaningful on any machine including a single-core CI runner;
/// * **projected** — per slot, the slowest *chunk* of shards under the
///   bundled thread pool's contiguous chunking at
///   [`SkewWorkload::threads`] threads, from the same single-threaded tick
///   samples: the multicore slot cost this machine would pay if it had the
///   cores;
/// * **measured** — wall-clock ms per slot of full runs at the configured
///   thread count; only a fair comparison when
///   [`SkewBenchReport::available_parallelism`] covers the thread count.
#[derive(Debug, Clone)]
pub struct SkewBenchReport {
    /// The workload shape measured.
    pub workload: SkewWorkload,
    /// Cores the machine exposes (what the measured model actually ran on).
    pub available_parallelism: usize,
    /// Whether static and rebalanced forecasts matched bit for bit after
    /// every slot.
    pub forecasts_identical: bool,
    /// Migrations the rebalanced arm performed.
    pub migrations: u64,
    /// The max/mean load ratio the rebalancer last observed.
    pub trigger_last_ratio: f64,
    /// Per-shard loads when the trigger last fired, before the move.
    pub loads_before: Vec<f64>,
    /// Per-shard loads after the last firing check's moves.
    pub loads_after: Vec<f64>,
    /// Critical-path ms per slot, static placement.
    pub static_critical_ms: f64,
    /// Critical-path ms per slot, rebalanced.
    pub rebalanced_critical_ms: f64,
    /// Projected ms per slot at the target thread count, static placement.
    pub static_projected_ms: f64,
    /// Projected ms per slot at the target thread count, rebalanced.
    pub rebalanced_projected_ms: f64,
    /// Measured wall-clock ms per slot at the target thread count, static.
    pub static_measured_ms: f64,
    /// Measured wall-clock ms per slot at the target thread count,
    /// rebalanced.
    pub rebalanced_measured_ms: f64,
}

impl SkewBenchReport {
    /// Static over rebalanced, critical-path model.
    pub fn critical_speedup(&self) -> f64 {
        self.static_critical_ms / self.rebalanced_critical_ms
    }

    /// Static over rebalanced, projected at the target thread count.
    pub fn projected_speedup(&self) -> f64 {
        self.static_projected_ms / self.rebalanced_projected_ms
    }

    /// Static over rebalanced, measured wall clock.
    pub fn measured_speedup(&self) -> f64 {
        self.static_measured_ms / self.rebalanced_measured_ms
    }

    /// The report as a JSON object (no trailing newline — embeddable as a
    /// section of `BENCH_fleet.json`).
    pub fn json_object(&self) -> String {
        let loads = |values: &[f64]| {
            let mut out = String::from("[");
            for (i, v) in values.iter().enumerate() {
                let _ = write!(out, "{}{:.2}", if i > 0 { ", " } else { "" }, v);
            }
            out.push(']');
            out
        };
        format!(
            "{{\n    \"shards\": {},\n    \"tenants\": {},\n    \"zipf_s\": {:.2},\n    \
             \"max_users\": {},\n    \"slots\": {},\n    \"threads\": {},\n    \
             \"available_parallelism\": {},\n    \"forecasts_identical\": {},\n    \
             \"migrations\": {},\n    \"trigger_last_ratio\": {:.3},\n    \
             \"loads_before\": {},\n    \"loads_after\": {},\n    \
             \"static_critical_ms_per_slot\": {:.4},\n    \
             \"rebalanced_critical_ms_per_slot\": {:.4},\n    \
             \"critical_path_speedup\": {:.2},\n    \
             \"static_projected_ms_per_slot\": {:.4},\n    \
             \"rebalanced_projected_ms_per_slot\": {:.4},\n    \
             \"projected_speedup\": {:.2},\n    \
             \"static_measured_ms_per_slot\": {:.4},\n    \
             \"rebalanced_measured_ms_per_slot\": {:.4},\n    \
             \"measured_speedup\": {:.2}\n  }}",
            self.workload.shards,
            self.workload.tenants,
            self.workload.zipf_s,
            self.workload.max_users,
            self.workload.slots,
            self.workload.threads,
            self.available_parallelism,
            self.forecasts_identical,
            self.migrations,
            self.trigger_last_ratio,
            loads(&self.loads_before),
            loads(&self.loads_after),
            self.static_critical_ms,
            self.rebalanced_critical_ms,
            self.critical_speedup(),
            self.static_projected_ms,
            self.rebalanced_projected_ms,
            self.projected_speedup(),
            self.static_measured_ms,
            self.rebalanced_measured_ms,
            self.measured_speedup(),
        )
    }
}

/// One slot's cost at `threads` threads under the bundled thread pool's
/// contiguous chunking, from the per-shard tick times: the pool splits the
/// shard list into `threads` contiguous chunks (the first `len % threads`
/// chunks one longer), runs each chunk on one worker, and the slot ends when
/// the slowest chunk does. Mirrors `chunk_ranges` in the bundled rayon
/// stand-in exactly, so the projection is the arithmetic the real pool
/// executes.
fn projected_slot_ns(ticks: &[u64], threads: usize) -> u64 {
    let len = ticks.len();
    let parts = threads.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0;
    let mut slowest = 0u64;
    for part in 0..parts {
        let size = base + usize::from(part < extra);
        let chunk: u64 = ticks[start..start + size].iter().sum();
        start += size;
        slowest = slowest.max(chunk);
    }
    slowest
}

/// Drives a full skewed run at the workload's thread count with telemetry
/// disabled and returns the mean wall-clock ms per slot (generation
/// included, identically on both arms).
fn measure_skewed(
    workload: &SkewWorkload,
    seed: u64,
    config: &SystemConfig,
    mix: &TenantMix,
    rebalancer: Option<RebalancerConfig>,
) -> f64 {
    let mut engine = FleetEngine::new(config.clone(), workload.shards, seed)
        .with_threads(workload.threads)
        .with_telemetry(TelemetryMode::Disabled);
    if let Some(rebalancer) = rebalancer {
        engine = engine.with_rebalancer(rebalancer);
    }
    engine.add_tenants(mix.tenant_ids());
    let start = Instant::now();
    for _ in 0..workload.slots {
        engine
            .try_tick_mix(mix)
            .expect("every hosted tenant is in the mix");
    }
    start.elapsed().as_secs_f64() * 1_000.0 / workload.slots as f64
}

/// Runs the Zipf-skew comparison: a static-placement fleet and a rebalanced
/// fleet drive the identical heavy-tailed [`TenantMix::zipf`] workload in
/// lockstep, with forecasts compared bit for bit after **every** slot — the
/// perf claim is only admissible because the rebalanced fleet provably
/// computes the same answers. The lockstep pass runs single-threaded with
/// monotonic telemetry, sampling each shard's tick time per slot for the
/// critical-path and projected models; a second pass measures wall-clock
/// runs at the target thread count.
pub fn run_skewed(workload: &SkewWorkload, seed: u64) -> SkewBenchReport {
    let config = bench_config();
    let mix = TenantMix::zipf(
        workload.tenants,
        workload.max_users,
        workload.zipf_s,
        config.groups.ids(),
        seed,
    );

    let mut static_engine = FleetEngine::new(config.clone(), workload.shards, seed).with_threads(1);
    static_engine.add_tenants(mix.tenant_ids());
    let mut rebalanced_engine = FleetEngine::new(config.clone(), workload.shards, seed)
        .with_threads(1)
        .with_rebalancer(skew_rebalancer_config());
    rebalanced_engine.add_tenants(mix.tenant_ids());

    let mut forecasts_identical = true;
    let mut static_critical_ns = 0u64;
    let mut rebalanced_critical_ns = 0u64;
    let mut static_projected_ns = 0u64;
    let mut rebalanced_projected_ns = 0u64;
    for _ in 0..workload.slots {
        static_engine
            .try_tick_mix(&mix)
            .expect("every hosted tenant is in the mix");
        rebalanced_engine
            .try_tick_mix(&mix)
            .expect("every hosted tenant is in the mix");
        if static_engine.forecasts() != rebalanced_engine.forecasts() {
            forecasts_identical = false;
        }
        let static_ticks = static_engine.last_shard_tick_ns();
        let rebalanced_ticks = rebalanced_engine.last_shard_tick_ns();
        static_critical_ns += static_ticks.iter().copied().max().unwrap_or(0);
        rebalanced_critical_ns += rebalanced_ticks.iter().copied().max().unwrap_or(0);
        static_projected_ns += projected_slot_ns(&static_ticks, workload.threads);
        rebalanced_projected_ns += projected_slot_ns(&rebalanced_ticks, workload.threads);
    }
    if static_engine.metrics() != rebalanced_engine.metrics() {
        forecasts_identical = false;
    }
    let rebalance = rebalanced_engine
        .telemetry()
        .rebalance
        .expect("the rebalanced arm runs a rebalancer");

    let static_measured_ms = measure_skewed(workload, seed, &config, &mix, None);
    let rebalanced_measured_ms = measure_skewed(
        workload,
        seed,
        &config,
        &mix,
        Some(skew_rebalancer_config()),
    );

    let to_ms = |ns: u64| ns as f64 / 1e6 / workload.slots as f64;
    SkewBenchReport {
        workload: *workload,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        forecasts_identical,
        migrations: rebalance.migrations,
        trigger_last_ratio: rebalance.last_ratio,
        loads_before: rebalance.loads_before,
        loads_after: rebalance.loads_after,
        static_critical_ms: to_ms(static_critical_ns),
        rebalanced_critical_ms: to_ms(rebalanced_critical_ns),
        static_projected_ms: to_ms(static_projected_ns),
        rebalanced_projected_ms: to_ms(rebalanced_projected_ns),
        static_measured_ms,
        rebalanced_measured_ms,
    }
}

/// Prints the skew comparison as an aligned table.
pub fn print_skewed(report: &SkewBenchReport) {
    println!(
        "\nzipf skew (s={:.1}) over {} tenants x {} slots, {} shards, target {} threads \
         ({} core(s) available)",
        report.workload.zipf_s,
        report.workload.tenants,
        report.workload.slots,
        report.workload.shards,
        report.workload.threads,
        report.available_parallelism,
    );
    println!(
        "  {:<26} {:>14} {:>14} {:>9}",
        "cost model", "static ms/slot", "rebal ms/slot", "speedup"
    );
    println!(
        "  {:<26} {:>14.3} {:>14.3} {:>8.2}x",
        "critical path (1/shard)",
        report.static_critical_ms,
        report.rebalanced_critical_ms,
        report.critical_speedup(),
    );
    println!(
        "  {:<26} {:>14.3} {:>14.3} {:>8.2}x",
        format!("projected @{} threads", report.workload.threads),
        report.static_projected_ms,
        report.rebalanced_projected_ms,
        report.projected_speedup(),
    );
    println!(
        "  {:<26} {:>14.3} {:>14.3} {:>8.2}x",
        "measured wall clock",
        report.static_measured_ms,
        report.rebalanced_measured_ms,
        report.measured_speedup(),
    );
    println!(
        "  migrations: {} (last trigger ratio {:.2}); forecasts identical every slot: {}",
        report.migrations, report.trigger_last_ratio, report.forecasts_identical,
    );
    if !report.loads_before.is_empty() {
        let fmt = |values: &[f64]| {
            values
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "  shard loads at last trigger: [{}] -> [{}]",
            fmt(&report.loads_before),
            fmt(&report.loads_after),
        );
    }
}

/// Absolute slack added to the telemetry-overhead gate, ms per slot. The
/// 3% relative bound is the real bar; on a smoke-sized workload a slot is a
/// few milliseconds, so scheduler jitter alone can swing two identical runs
/// past a bare percentage — the fixed slack absorbs that noise while still
/// failing on any per-record cost sneaking into the hot path.
pub const OVERHEAD_SLACK_MS: f64 = 0.25;

/// Relative telemetry-overhead bound: instrumented ticks may cost at most
/// this fraction more than uninstrumented ones.
pub const OVERHEAD_BOUND: f64 = 0.03;

/// Results and gate verdicts of the telemetry smoke run: one fleet pass
/// with monotonic telemetry, one with telemetry disabled, on identical
/// record streams.
#[derive(Debug, Clone)]
pub struct TelemetrySmokeReport {
    /// The workload shape measured.
    pub workload: FleetWorkload,
    /// Mean wall-clock time of one fleet slot with monotonic telemetry, ms.
    pub enabled_ms_per_slot: f64,
    /// Mean wall-clock time of one fleet slot with telemetry disabled, ms.
    pub disabled_ms_per_slot: f64,
    /// The instrumented engine's telemetry snapshot.
    pub telemetry: FleetTelemetry,
    /// The instrumented engine's registry as a versioned JSON snapshot.
    pub snapshot_json: String,
    /// Correctness-gate failures: histogram totals that disagree with event
    /// counts, or a snapshot that fails to round-trip. Empty on success.
    pub failures: Vec<String>,
    /// Whether the instrumented pass stayed within the overhead bound.
    pub overhead_within_bound: bool,
}

impl TelemetrySmokeReport {
    /// Instrumented cost over uninstrumented cost, as a percentage.
    pub fn overhead_percent(&self) -> f64 {
        (self.enabled_ms_per_slot / self.disabled_ms_per_slot - 1.0) * 100.0
    }

    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.overhead_within_bound
    }

    /// The report as a JSON object; `snapshot` embeds the registry snapshot
    /// verbatim (it is already JSON).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"fleet_telemetry\",\n  \"tenants\": {},\n  \"slots\": {},\n  \
             \"users_per_tenant\": {},\n  \"enabled_ms_per_slot\": {:.4},\n  \
             \"disabled_ms_per_slot\": {:.4},\n  \"overhead_percent\": {:.2},\n  \
             \"overhead_within_bound\": {},\n  \"checks_passed\": {},\n  \"snapshot\": {}\n}}\n",
            self.workload.tenants,
            self.workload.slots,
            self.workload.users_per_tenant,
            self.enabled_ms_per_slot,
            self.disabled_ms_per_slot,
            self.overhead_percent(),
            self.overhead_within_bound,
            self.failures.is_empty(),
            self.snapshot_json.trim_end(),
        )
    }
}

/// Drives the fleet path alone (no single-shard baseline, no tenant-alone
/// replicas) over the workload's record stream and returns the mean ms per
/// slot plus the driver for inspection.
fn drive_fleet(workload: &FleetWorkload, seed: u64, mode: TelemetryMode) -> (f64, FleetDriver) {
    let config = bench_config();
    let mix = TenantMix::heterogeneous(
        workload.tenants,
        workload.users_per_tenant,
        config.groups.ids(),
        seed,
    );
    let mut engine = FleetEngine::new(config, workload.tenants, seed).with_telemetry(mode);
    engine.add_tenants(mix.tenant_ids());
    let (feed, source) = SlotBatchSource::channel();
    let mut driver = FleetDriver::new(engine).with_shared_source(source);

    let mut streams: Vec<StdRng> = mix.tenant_ids().map(|t| mix.stream_for(t)).collect();
    let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut fleet_ms = 0.0f64;
    for slot in 0..workload.slots {
        let per_tenant: Vec<Vec<(AccelerationGroupId, UserId)>> = mix
            .tenant_ids()
            .map(|t| mix.slot_records(t, slot, &mut streams[t.0 as usize]))
            .collect();
        let batch = interleave(&per_tenant, &mut arrival_rng);
        let start = Instant::now();
        feed.push_slot(batch);
        driver.step().expect("the shared lane never misroutes");
        fleet_ms += start.elapsed().as_secs_f64() * 1_000.0;
    }
    (fleet_ms / workload.slots as f64, driver)
}

/// The telemetry smoke gate: proves the instrumentation layer's three
/// contracts on a live fleet run.
///
/// 1. **Histogram totals equal event counts** — the stage-count arithmetic
///    (`windowing == predict == tenant-ticks`, `allocate == allocations +
///    infeasible`, `bill == allocations`, `tick == shards × slots`, `slot ==
///    slots`) holds exactly; a missed or double-counted timer fails the gate.
/// 2. **The exposition round-trips** — the versioned JSON snapshot parses
///    with the in-tree parser, carries [`SNAPSHOT_VERSION`], and its
///    histogram counts agree with the live histograms; the Prometheus text
///    carries the slot-tick series.
/// 3. **The hot path stays cheap** — the instrumented pass costs at most
///    [`OVERHEAD_BOUND`] more than a telemetry-disabled pass over identical
///    records (plus [`OVERHEAD_SLACK_MS`] for timing noise).
pub fn telemetry_smoke(workload: &FleetWorkload, seed: u64) -> TelemetrySmokeReport {
    // a short untimed pass warms the allocator and the rayon pool so the
    // disabled-vs-enabled comparison does not charge warmup to either side
    let warmup = FleetWorkload {
        slots: workload.slots.min(16),
        ..*workload
    };
    drive_fleet(&warmup, seed, TelemetryMode::Disabled);

    let (disabled_ms, _) = drive_fleet(workload, seed, TelemetryMode::Disabled);
    let (enabled_ms, driver) = drive_fleet(workload, seed, TelemetryMode::Monotonic);

    let report = driver.report();
    let telemetry = report.telemetry.clone();
    let mut failures = Vec::new();
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            failures.push(format!("{name}: got {got}, want {want}"));
        }
    };

    let slots = workload.slots as u64;
    let shards = telemetry.shards.len() as u64;
    check("slot histogram count", telemetry.slot.count(), slots);
    check(
        "tick histogram count",
        telemetry.stages.tick.count(),
        shards * slots,
    );
    check(
        "windowing histogram count",
        telemetry.stages.windowing.count(),
        workload.tenants as u64 * slots,
    );
    check(
        "predict histogram count",
        telemetry.stages.predict.count(),
        telemetry.stages.windowing.count(),
    );
    check(
        "allocate histogram count",
        telemetry.stages.allocate.count(),
        (report.metrics.total_allocations + report.metrics.total_infeasible) as u64,
    );
    check(
        "bill histogram count",
        telemetry.stages.bill.count(),
        report.metrics.total_allocations as u64,
    );
    let staged: u64 = telemetry.shards.iter().map(|s| s.records).sum();
    check(
        "records staged across shards",
        staged,
        report.records as u64,
    );

    let registry = driver.engine().telemetry_registry();
    let snapshot_json = json_snapshot(&registry);
    match json::parse(&snapshot_json) {
        Err(error) => failures.push(format!("snapshot does not parse: {error}")),
        Ok(doc) => {
            if doc.get("version").and_then(|v| v.as_u64()) != Some(SNAPSHOT_VERSION) {
                failures.push(format!("snapshot version is not {SNAPSHOT_VERSION}"));
            }
            let hist_count = |name: &str| {
                doc.get("histograms")
                    .and_then(|h| h.get(name))
                    .and_then(|h| h.get("count"))
                    .and_then(|c| c.as_u64())
            };
            if hist_count("fleet_slot_tick_ns") != Some(telemetry.slot.count()) {
                failures.push("snapshot fleet_slot_tick_ns count disagrees".to_string());
            }
            let counter = |name: &str| {
                doc.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(|c| c.as_u64())
            };
            if counter("fleet_records_total") != Some(report.records as u64) {
                failures.push("snapshot fleet_records_total disagrees".to_string());
            }
        }
    }
    if !prometheus_text(&registry).contains("fleet_slot_tick_ns_count") {
        failures.push("prometheus text is missing the slot-tick series".to_string());
    }

    let overhead_within_bound =
        enabled_ms <= disabled_ms * (1.0 + OVERHEAD_BOUND) + OVERHEAD_SLACK_MS;

    TelemetrySmokeReport {
        workload: *workload,
        enabled_ms_per_slot: enabled_ms,
        disabled_ms_per_slot: disabled_ms,
        telemetry,
        snapshot_json,
        failures,
        overhead_within_bound,
    }
}

/// Prints the telemetry smoke verdicts as an aligned table.
pub fn print_telemetry_smoke(report: &TelemetrySmokeReport) {
    println!(
        "\ntelemetry smoke over {} tenants x {} slots",
        report.workload.tenants, report.workload.slots
    );
    println!("  {:<32} {:>12}", "fleet path", "ms/slot");
    println!(
        "  {:<32} {:>12.3}",
        "telemetry disabled", report.disabled_ms_per_slot
    );
    println!(
        "  {:<32} {:>12.3}",
        "telemetry enabled (monotonic)", report.enabled_ms_per_slot
    );
    println!(
        "  overhead: {:+.2}% (bound {:.0}% + {:.2} ms slack) -> {}",
        report.overhead_percent(),
        OVERHEAD_BOUND * 100.0,
        OVERHEAD_SLACK_MS,
        if report.overhead_within_bound {
            "ok"
        } else {
            "EXCEEDED"
        },
    );
    if report.failures.is_empty() {
        println!("  histogram totals equal event counts; snapshot round-trips: ok");
    } else {
        for failure in &report.failures {
            println!("  FAILED: {failure}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_bench_verifies_bit_identity() {
        let workload = FleetWorkload {
            tenants: 6,
            slots: 12,
            users_per_tenant: 20,
        };
        let report = run(&workload, crate::DEFAULT_SEED);
        assert!(report.forecasts_identical);
        assert!(report.single_ms_per_slot > 0.0 && report.fleet_ms_per_slot > 0.0);
        // the engine defaults to monotonic telemetry, so the bench report
        // carries real tail latencies and per-shard load
        assert_eq!(report.telemetry.slot.count(), 12);
        assert!(report.telemetry.slot.p99() > 0);
        assert_eq!(report.telemetry.shards.len(), report.shards);
        let json = report.to_json();
        assert!(json.contains("\"tenants\": 6"));
        assert!(json.contains("\"forecasts_bit_identical\": true"));
        assert!(json.contains("\"slot_tick_ns\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"shard_loads\""));
        assert!(json.contains("\"load_ewma\""));
    }

    #[test]
    fn telemetry_smoke_gates_pass_on_a_small_fleet() {
        let workload = FleetWorkload {
            tenants: 6,
            slots: 12,
            users_per_tenant: 20,
        };
        let report = telemetry_smoke(&workload, crate::DEFAULT_SEED);
        // the correctness gates are deterministic; the overhead gate is a
        // wall-clock comparison and is only asserted at smoke scale in CI
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.telemetry.slot.count(), 12);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"fleet_telemetry\""));
        assert!(json.contains("\"snapshot\": {\"version\":1,"));
        mca_telemetry::json::parse(&json).expect("the telemetry report is valid JSON");
    }

    #[test]
    fn skewed_run_rebalances_without_perturbing_forecasts() {
        let workload = SkewWorkload {
            shards: 5,
            tenants: 8,
            zipf_s: 0.8,
            max_users: 60,
            slots: 30,
            threads: 2,
        };
        let report = run_skewed(&workload, crate::DEFAULT_SEED);
        assert!(
            report.forecasts_identical,
            "rebalancing must not change a single forecast or metric"
        );
        assert!(report.migrations > 0, "the Zipf skew must trigger moves");
        assert!(report.static_critical_ms > 0.0 && report.rebalanced_critical_ms > 0.0);
        // the projected model can never beat the critical path (one thread
        // per shard is its limit), and never lose to a single thread
        assert!(report.static_projected_ms >= report.static_critical_ms);
        let json = report.json_object();
        assert!(json.contains("\"forecasts_identical\": true"));
        assert!(json.contains("\"projected_speedup\""));
        // the embedded form stays valid JSON
        let full = FleetBenchReport {
            workload: FleetWorkload {
                tenants: 2,
                slots: 1,
                users_per_tenant: 1,
            },
            shards: 1,
            threads: 1,
            single_ms_per_slot: 1.0,
            fleet_ms_per_slot: 1.0,
            forecasts_identical: true,
            telemetry: FleetTelemetry {
                mode: TelemetryMode::Disabled,
                slot: Default::default(),
                stages: Default::default(),
                shards: Vec::new(),
                rebalance: None,
                critical_path_ns: 0,
            },
        }
        .to_json_with_skew(&report);
        mca_telemetry::json::parse(&full).expect("the skewed report is valid JSON");
    }

    #[test]
    fn projected_slot_model_mirrors_the_pool_chunking() {
        // 5 shards at 2 threads: chunks [0..3], [3..5]
        assert_eq!(projected_slot_ns(&[5, 1, 1, 4, 4], 2), 8);
        // more threads than shards: one shard per worker = critical path
        assert_eq!(projected_slot_ns(&[5, 1, 1], 8), 5);
        // one thread: the full serial sum
        assert_eq!(projected_slot_ns(&[5, 1, 1], 1), 7);
    }

    #[test]
    fn interleaving_preserves_every_record() {
        let per_tenant = vec![
            vec![(AccelerationGroupId(1), UserId(1)); 3],
            vec![(AccelerationGroupId(1), UserId(1_000_001)); 5],
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let batch = interleave(&per_tenant, &mut rng);
        assert_eq!(batch.len(), 8);
        assert_eq!(batch.iter().filter(|r| r.tenant == TenantId(0)).count(), 3);
        assert_eq!(batch.iter().filter(|r| r.tenant == TenantId(1)).count(), 5);
    }
}
