//! Fig. 10 — (a) prediction accuracy as a function of the amount of history
//! (10-fold cross-validation over a 16-hour trace-driven workload, ≈87.5 %
//! with enough data), (b) response time perceived by the 100 users over the
//! run, and (c) the promotion rate of the workload.

use crate::fig9;
use crate::util;
use mca_core::{
    cross_validate, learning_curve, DistanceKind, PredictionStrategy, SlotHistory, SystemReport,
    TraceLog,
};
use mca_offload::AccelerationGroupId;

/// Output of the Fig. 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Output {
    /// (history size, accuracy) pairs — Fig. 10a.
    pub learning_curve: Vec<(usize, f64)>,
    /// Headline 10-fold cross-validation accuracy.
    pub cross_validated_accuracy: f64,
    /// `(request index, response ms, group)` over the whole run — Fig. 10b.
    pub responses: Vec<(usize, f64, u8)>,
    /// `(user id, final group, promotions)` — Fig. 10c.
    pub promotions: Vec<(u32, u8, u32)>,
    /// Fraction of users that ended above the entry group.
    pub promoted_fraction: f64,
}

/// Runs the 16-hour prediction study on top of the Fig. 9 system experiment.
///
/// `slots` controls how many prediction slots the 16-hour history is divided
/// into (the paper's Fig. 10a x-axis spans up to 20 history entries).
pub fn run(
    users: usize,
    duration_ms: f64,
    total_requests: usize,
    slots: usize,
    seed: u64,
) -> Fig10Output {
    let fig9 = fig9::run(users, duration_ms, total_requests, seed);
    let report: &SystemReport = &fig9.report;

    // Build the slot history for the predictor study from the logged traces.
    let log: TraceLog = report.records.iter().cloned().collect();
    let slot_length = duration_ms / slots.max(2) as f64;
    let history = SlotHistory::from_log(&log, slot_length);
    let groups = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];

    let curve = learning_curve(
        &history,
        &groups,
        PredictionStrategy::NearestSlot,
        DistanceKind::SetEdit,
    );
    let folds = 10.min(history.len().saturating_sub(1)).max(2);
    let cv = cross_validate(
        &history,
        &groups,
        PredictionStrategy::NearestSlot,
        DistanceKind::SetEdit,
        folds,
    );

    let responses: Vec<(usize, f64, u8)> = report
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.round_trip_ms, r.group.0))
        .collect();
    let promotions: Vec<(u32, u8, u32)> = report
        .perceptions
        .iter()
        .map(|p| {
            (
                p.user.0,
                p.final_group().map(|g| g.0).unwrap_or(1),
                p.promotions,
            )
        })
        .collect();

    Fig10Output {
        learning_curve: curve,
        cross_validated_accuracy: cv.mean_accuracy,
        responses,
        promotions,
        promoted_fraction: report.promoted_user_fraction(AccelerationGroupId(1)),
    }
}

/// Prints the three panels.
pub fn print(output: &Fig10Output) {
    util::header(
        "Fig 10a: prediction accuracy vs size of the data",
        &["history_size", "accuracy_%"],
    );
    for (size, acc) in &output.learning_curve {
        util::row(&[size.to_string(), util::f1(acc * 100.0)]);
    }
    println!(
        "10-fold cross-validated accuracy: {:.1}% (paper: 87.5%)",
        output.cross_validated_accuracy * 100.0
    );
    util::header(
        "Fig 10b: response time of the workload (sampled)",
        &["request", "response_ms", "group"],
    );
    for (i, response, group) in output
        .responses
        .iter()
        .step_by((output.responses.len() / 60).max(1))
    {
        util::row(&[i.to_string(), util::f1(*response), format!("a{group}")]);
    }
    util::header(
        "Fig 10c: promotion rate of the workload",
        &["user", "final_group", "promotions"],
    );
    for (user, group, promotions) in &output.promotions {
        util::row(&[
            user.to_string(),
            format!("a{group}"),
            promotions.to_string(),
        ]);
    }
    println!("promoted users: {:.1}%", output.promoted_fraction * 100.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_accuracy_is_high_and_promotions_happen() {
        // scaled-down 16-slot study
        let out = run(30, 2.0 * 3_600_000.0, 1_200, 16, 11);
        assert!(!out.learning_curve.is_empty());
        assert!(
            out.cross_validated_accuracy > 0.7,
            "cross-validated accuracy {}",
            out.cross_validated_accuracy
        );
        assert!(out.cross_validated_accuracy <= 1.0);
        assert!(!out.responses.is_empty());
        assert_eq!(out.promotions.len(), 30);
        assert!(out.promoted_fraction > 0.0, "some users must be promoted");
    }
}
