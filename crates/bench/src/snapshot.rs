//! Checkpoint/restore cost curve for durable fleet sessions: wall-clock
//! latency and wire bytes of [`FleetEngine::checkpoint`] /
//! [`FleetEngine::restore`] as the fleet grows, with every restore verified
//! bit-identical before it is timed into the report.
//!
//! Each arm drives a heterogeneous mix half way, checkpoints to memory,
//! restores into a fresh engine, and drives **both** engines to the end —
//! the report only counts an arm as passing when the resumed run's
//! forecasts and metrics equal the uninterrupted one exactly.
//!
//! `cargo run --release -p mca-bench --bin bench_snapshot` regenerates
//! `BENCH_snapshot.json` at the repository root; `--smoke` runs the small
//! CI shape and gates on resume identity.

use mca_core::SystemConfig;
use mca_fleet::FleetEngine;
use mca_workload::TenantMix;
use std::fmt::Write as _;
use std::time::Instant;

/// Shape of the checkpoint/restore sweep.
#[derive(Debug, Clone)]
pub struct SnapshotWorkload {
    /// Fleet sizes (tenant counts) to measure, one arm each.
    pub fleet_sizes: Vec<usize>,
    /// Users of the heaviest tenant in each mix.
    pub users_per_tenant: usize,
    /// Number of shards each engine runs.
    pub shards: usize,
    /// Thread count of every engine.
    pub threads: usize,
    /// Slots driven before the checkpoint.
    pub warmup_slots: usize,
    /// Slots driven after the restore, on both arms.
    pub resume_slots: usize,
}

impl SnapshotWorkload {
    /// The acceptance-bar configuration.
    pub fn headline() -> Self {
        Self {
            fleet_sizes: vec![8, 16, 32, 64, 128],
            users_per_tenant: 24,
            shards: 7,
            threads: 4,
            warmup_slots: 96,
            resume_slots: 96,
        }
    }

    /// A small configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            fleet_sizes: vec![4, 8, 16],
            users_per_tenant: 12,
            shards: 3,
            threads: 2,
            warmup_slots: 24,
            resume_slots: 24,
        }
    }
}

/// One fleet size's measurements.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPoint {
    /// Tenants in this arm's fleet.
    pub tenants: usize,
    /// Checkpoint size on the wire, bytes.
    pub bytes: u64,
    /// Sections in the stream.
    pub sections: u32,
    /// Wall-clock time of the checkpoint, ms.
    pub checkpoint_ms: f64,
    /// Wall-clock time of the restore, ms.
    pub restore_ms: f64,
    /// Whether the resumed drive finished bit-identical to the
    /// uninterrupted one (forecasts and metrics).
    pub resume_identical: bool,
}

/// Measurements of one checkpoint/restore sweep.
#[derive(Debug, Clone)]
pub struct SnapshotBenchReport {
    /// The workload shape measured.
    pub workload: SnapshotWorkload,
    /// One point per fleet size, in [`SnapshotWorkload::fleet_sizes`] order.
    pub points: Vec<SnapshotPoint>,
}

impl SnapshotBenchReport {
    /// True when every arm resumed bit-identically.
    pub fn all_identical(&self) -> bool {
        self.points.iter().all(|p| p.resume_identical)
    }

    /// The report as a JSON object (hand-rolled: serde_json is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let mut points = String::new();
        for (index, point) in self.points.iter().enumerate() {
            let _ = write!(
                points,
                "{}\n    {{\"tenants\": {}, \"bytes\": {}, \"sections\": {}, \
                 \"checkpoint_ms\": {:.4}, \"restore_ms\": {:.4}, \
                 \"resume_identical\": {}}}",
                if index > 0 { "," } else { "" },
                point.tenants,
                point.bytes,
                point.sections,
                point.checkpoint_ms,
                point.restore_ms,
                point.resume_identical,
            );
        }
        format!(
            "{{\n  \"benchmark\": \"fleet_snapshot\",\n  \"users_per_tenant\": {},\n  \
             \"shards\": {},\n  \"threads\": {},\n  \"warmup_slots\": {},\n  \
             \"resume_slots\": {},\n  \"all_identical\": {},\n  \
             \"points\": [{}\n  ]\n}}\n",
            self.workload.users_per_tenant,
            self.workload.shards,
            self.workload.threads,
            self.workload.warmup_slots,
            self.workload.resume_slots,
            self.all_identical(),
            points,
        )
    }
}

fn snapshot_config() -> SystemConfig {
    crate::fleet::bench_config()
}

/// Runs the sweep: per fleet size, warm up, checkpoint, restore, and drive
/// both the original and the resumed engine to the end under the same mix.
pub fn run(workload: &SnapshotWorkload, seed: u64) -> SnapshotBenchReport {
    let config = snapshot_config();
    let points = workload
        .fleet_sizes
        .iter()
        .map(|&tenants| {
            let mix = TenantMix::heterogeneous(
                tenants,
                workload.users_per_tenant,
                config.groups.ids(),
                seed,
            );
            let mut engine = FleetEngine::new(config.clone(), workload.shards, seed)
                .with_threads(workload.threads);
            engine.add_tenants(mix.tenant_ids());
            for _ in 0..workload.warmup_slots {
                engine
                    .try_tick_mix(&mix)
                    .expect("every hosted tenant is in the mix");
            }

            let mut bytes = Vec::new();
            let start = Instant::now();
            let stats = engine
                .checkpoint(&mut bytes)
                .expect("checkpointing to memory cannot fail");
            let checkpoint_ms = start.elapsed().as_secs_f64() * 1_000.0;

            let start = Instant::now();
            let mut resumed = FleetEngine::restore(&mut bytes.as_slice(), &config)
                .expect("the bytes were just written");
            let restore_ms = start.elapsed().as_secs_f64() * 1_000.0;

            let mut resume_identical = resumed.forecasts() == engine.forecasts();
            for _ in 0..workload.resume_slots {
                engine
                    .try_tick_mix(&mix)
                    .expect("every hosted tenant is in the mix");
                resumed
                    .try_tick_mix(&mix)
                    .expect("every hosted tenant is in the mix");
            }
            resume_identical = resume_identical
                && resumed.forecasts() == engine.forecasts()
                && resumed.metrics() == engine.metrics();

            SnapshotPoint {
                tenants,
                bytes: stats.bytes,
                sections: stats.sections,
                checkpoint_ms,
                restore_ms,
                resume_identical,
            }
        })
        .collect();

    SnapshotBenchReport {
        workload: workload.clone(),
        points,
    }
}

/// Prints the sweep as an aligned table.
pub fn print(report: &SnapshotBenchReport) {
    println!(
        "fleet checkpoint/restore sweep: {} shards, {} thread(s), {} users/tenant, \
         checkpoint after {} slots, {} slots resumed",
        report.workload.shards,
        report.workload.threads,
        report.workload.users_per_tenant,
        report.workload.warmup_slots,
        report.workload.resume_slots,
    );
    println!(
        "  {:<10} {:>12} {:>10} {:>14} {:>12} {:>10}",
        "tenants", "bytes", "sections", "checkpoint ms", "restore ms", "resume"
    );
    for point in &report.points {
        println!(
            "  {:<10} {:>12} {:>10} {:>14.3} {:>12.3} {:>10}",
            point.tenants,
            point.bytes,
            point.sections,
            point.checkpoint_ms,
            point.restore_ms,
            if point.resume_identical {
                "exact"
            } else {
                "DIVERGED"
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SnapshotWorkload {
        SnapshotWorkload {
            fleet_sizes: vec![3, 6],
            users_per_tenant: 8,
            shards: 2,
            threads: 2,
            warmup_slots: 8,
            resume_slots: 8,
        }
    }

    #[test]
    fn sweep_resumes_bit_identically_and_bytes_grow_with_the_fleet() {
        let report = run(&tiny(), crate::DEFAULT_SEED);
        assert!(report.all_identical());
        assert_eq!(report.points.len(), 2);
        assert!(report.points[1].bytes > report.points[0].bytes);
        assert!(report.points.iter().all(|p| p.sections > 0));
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let report = run(&tiny(), crate::DEFAULT_SEED);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"fleet_snapshot\""));
        assert!(json.contains("\"resume_identical\": true"));
        mca_telemetry::json::parse(&json).expect("the sweep report is valid JSON");
    }
}
