//! Fig. 9 — dynamic acceleration and user perception: the 8-hour,
//! 100-user, trace-driven experiment with three acceleration groups
//! (t2.nano, t2.large, m4.4xlarge), a 50-user background load per server and
//! the static 1/50 promotion probability. Panel (b) shows a user that was
//! never promoted (stable ≈2.5 s responses); panel (c) shows a user promoted
//! through every level (response time drops at each promotion).

use mca_core::{System, SystemConfig, SystemReport, UserPerception};
use mca_mobile::InterArrivalSampler;
use mca_offload::{AccelerationGroupId, TaskPool, TaskSpec, UserId};
use mca_workload::{ArrivalTrace, GenerationMode, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::util;

/// Output of the 8-hour experiment.
#[derive(Debug, Clone)]
pub struct Fig9Output {
    /// Full system report.
    pub report: SystemReport,
    /// A user that was never promoted (the paper's "user 32").
    pub stable_user: Option<UserPerception>,
    /// A user promoted to the highest group (the paper's "user 8").
    pub promoted_user: Option<UserPerception>,
}

/// Generates the paper-style sporadic workload: `users` devices issuing
/// requests with a mean inter-request gap chosen so that roughly
/// `total_requests` arrive over `duration_ms` (≈4000 requests over 8 hours
/// for 100 users in the paper).
pub fn sporadic_workload(
    users: usize,
    duration_ms: f64,
    total_requests: usize,
    seed: u64,
) -> ArrivalTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_user = (total_requests as f64 / users as f64).max(1.0);
    let mean_gap_ms = (duration_ms / per_user).max(200.0);
    let sampler = InterArrivalSampler::new(100.0, duration_ms.max(200.0), mean_gap_ms);
    WorkloadGenerator::new(
        GenerationMode::InterArrival { users, sampler },
        TaskPool::static_load(TaskSpec::paper_static_minimax()),
    )
    .generate(duration_ms, &mut rng)
}

/// Runs the experiment. The defaults used by the `fig9` binary are the
/// paper's values (100 users, 8 hours, ≈4000 requests); tests use smaller
/// settings.
pub fn run(users: usize, duration_ms: f64, total_requests: usize, seed: u64) -> Fig9Output {
    let workload = sporadic_workload(users, duration_ms, total_requests, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let config = SystemConfig::paper_three_groups();
    let mut system = System::new(config);
    let report = system.run(&workload, &mut rng);

    let entry = AccelerationGroupId(1);
    let top = AccelerationGroupId(3);
    let stable_user = report
        .perceptions
        .iter()
        .filter(|p| p.promotions == 0 && p.final_group() == Some(entry))
        .max_by_key(|p| p.responses.len())
        .cloned();
    let promoted_user = report
        .perceptions
        .iter()
        .filter(|p| p.final_group() == Some(top))
        .max_by_key(|p| p.responses.len())
        .cloned();
    Fig9Output {
        report,
        stable_user,
        promoted_user,
    }
}

/// Prints both user-perception panels.
pub fn print(output: &Fig9Output) {
    println!(
        "8-hour experiment: {} requests, {} users, mean response {:.0} ms, total cost ${:.2}",
        output.report.records.len(),
        output.report.perceptions.len(),
        output.report.mean_response_ms,
        output.report.total_cost
    );
    if let Some(user) = &output.stable_user {
        print_user("Fig 9b: user never promoted", user);
    }
    if let Some(user) = &output.promoted_user {
        print_user("Fig 9c: user promoted to every level", user);
    }
}

fn print_user(title: &str, user: &UserPerception) {
    util::header(
        &format!("{title} ({})", UserId(user.user.0)),
        &["request", "response_ms", "group"],
    );
    for (i, (response, group)) in user.responses.iter().enumerate() {
        util::row(&[i.to_string(), util::f1(*response), group.to_string()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_user_sees_seconds_promoted_user_speeds_up() {
        // scaled-down run: 40 users, 2 simulated hours, ~1500 requests
        let out = run(40, 2.0 * 3_600_000.0, 1_500, 42);
        assert!(out.report.records.len() > 800);
        let stable = out
            .stable_user
            .as_ref()
            .expect("some user is never promoted");
        assert!(stable.promotions == 0);
        // ≈2.5 s perceived on acceleration 1 under the 50-user background load
        assert!(
            stable.mean_response_ms() > 1_800.0 && stable.mean_response_ms() < 3_500.0,
            "stable user mean {}",
            stable.mean_response_ms()
        );
        let promoted = out
            .promoted_user
            .as_ref()
            .expect("some user reaches the top group");
        assert!(promoted.promotions >= 2);
        // responses served by group 3 are faster than those served by group 1
        let mean_in = |p: &UserPerception, g: u8| {
            let v: Vec<f64> = p
                .responses
                .iter()
                .filter(|(_, gr)| gr.0 == g)
                .map(|(r, _)| *r)
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        if let (Some(g1), Some(g3)) = (mean_in(promoted, 1), mean_in(promoted, 3)) {
            assert!(g3 < g1, "group3 {g3} should be faster than group1 {g1}");
        }
    }

    #[test]
    fn sporadic_workload_matches_requested_volume() {
        let trace = sporadic_workload(50, 3_600_000.0, 2_000, 7);
        let ratio = trace.len() as f64 / 2_000.0;
        assert!(
            ratio > 0.6 && ratio < 1.6,
            "generated {} requests",
            trace.len()
        );
        assert_eq!(trace.distinct_users(), 50);
    }
}
