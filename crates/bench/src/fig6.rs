//! Fig. 6 — the t2.nano / t2.micro anomaly: despite smaller nominal
//! resources, t2.nano serves load with lower (and less variable) response
//! times than t2.micro, which is why micro is demoted to acceleration
//! group 0.

use crate::util;
use mca_cloudsim::{InstanceType, Server};
use mca_offload::TaskPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean and standard deviation for both instances at one concurrency.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Number of concurrent users.
    pub users: usize,
    /// t2.nano mean response, ms.
    pub nano_mean_ms: f64,
    /// t2.nano standard deviation, ms.
    pub nano_sd_ms: f64,
    /// t2.micro mean response, ms.
    pub micro_mean_ms: f64,
    /// t2.micro standard deviation, ms.
    pub micro_sd_ms: f64,
}

/// Runs the nano-vs-micro comparison.
pub fn run(duration_per_level_ms: f64, seed: u64) -> Vec<Fig6Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = TaskPool::paper_default();
    [1usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        .iter()
        .map(|&users| {
            let mut nano = Server::new(InstanceType::T2Nano);
            let mut micro = Server::new(InstanceType::T2Micro);
            let n = nano.run_closed_loop(&pool, users, duration_per_level_ms, &mut rng);
            let m = micro.run_closed_loop(&pool, users, duration_per_level_ms, &mut rng);
            Fig6Row {
                users,
                nano_mean_ms: n.mean_ms,
                nano_sd_ms: n.std_dev_ms,
                micro_mean_ms: m.mean_ms,
                micro_sd_ms: m.std_dev_ms,
            }
        })
        .collect()
}

/// Prints the figure as a text table.
pub fn print(rows: &[Fig6Row]) {
    util::header(
        "Fig 6: t2.nano vs t2.micro anomaly",
        &[
            "users",
            "nano_mean_ms",
            "nano_sd_ms",
            "micro_mean_ms",
            "micro_sd_ms",
        ],
    );
    for r in rows {
        util::row(&[
            r.users.to_string(),
            util::f1(r.nano_mean_ms),
            util::f1(r.nano_sd_ms),
            util::f1(r.micro_mean_ms),
            util::f1(r.micro_sd_ms),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_is_consistently_worse_than_nano_under_load() {
        let rows = run(20_000.0, 5);
        assert_eq!(rows.len(), 11);
        for r in rows.iter().filter(|r| r.users >= 10) {
            assert!(r.micro_mean_ms > r.nano_mean_ms, "{r:?}");
        }
    }
}
