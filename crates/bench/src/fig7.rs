//! Fig. 7 — system performance: the `T_response = T1 + T2 + T_cloud`
//! decomposition per acceleration level under a 30-user concurrent load
//! (Fig. 7b), and the stability (standard deviation) of each level as the
//! concurrency grows, including the level-4 c4.8xlarge added in §VI-B
//! (Fig. 7c).

use crate::util;
use mca_cloudsim::{InstanceType, Server};
use mca_core::{SdnAccelerator, SystemConfig};
use mca_offload::{AccelerationGroupId, OffloadRequest, RequestId, TaskPool, TaskSpec, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean per-component times for one acceleration level (Fig. 7b).
#[derive(Debug, Clone, Copy)]
pub struct ComponentRow {
    /// Acceleration level (1–4).
    pub level: u8,
    /// Mean total response time, ms.
    pub t_response_ms: f64,
    /// Mean mobile ↔ front-end communication time, ms.
    pub t1_ms: f64,
    /// Mean front-end ↔ back-end routing time, ms.
    pub t2_ms: f64,
    /// Mean cloud execution time, ms.
    pub t_cloud_ms: f64,
}

/// Standard deviation of the response time per level and concurrency
/// (Fig. 7c).
#[derive(Debug, Clone, Copy)]
pub struct StabilityRow {
    /// Number of concurrent users.
    pub users: usize,
    /// Standard deviation per acceleration level 1–4, ms.
    pub sd_ms: [f64; 4],
}

/// Output of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Output {
    /// Fig. 7b rows.
    pub components: Vec<ComponentRow>,
    /// Fig. 7c rows.
    pub stability: Vec<StabilityRow>,
}

const LEVEL_INSTANCES: [InstanceType; 4] = [
    InstanceType::T2Small,
    InstanceType::T2Large,
    InstanceType::M4_10XLarge,
    InstanceType::C4_8XLarge,
];

/// Runs the per-component timing and stability measurements.
pub fn run(requests_per_level: u32, seed: u64) -> Fig7Output {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fig. 7b: 30 concurrent users through the SDN-accelerator, four groups
    // (1..=4) backed by the level representatives.
    let config = SystemConfig::paper_five_groups().with_background_load(30);
    let mut sdn = SdnAccelerator::new(config);
    let mut components = Vec::new();
    for level in 1u8..=4 {
        let mut sums = [0.0f64; 4];
        for i in 0..requests_per_level {
            let request = OffloadRequest::new(
                RequestId(u64::from(i)),
                UserId(i),
                AccelerationGroupId(level),
                TaskSpec::paper_static_minimax(),
                90.0,
                f64::from(i) * 30_000.0,
            );
            let record = sdn
                .handle(&request, f64::from(i) * 30_000.0, &mut rng)
                .expect("route")
                .record;
            sums[0] += record.round_trip_ms;
            sums[1] += record.t1_ms;
            sums[2] += record.t2_ms;
            sums[3] += record.t_cloud_ms;
        }
        let n = f64::from(requests_per_level);
        components.push(ComponentRow {
            level,
            t_response_ms: sums[0] / n,
            t1_ms: sums[1] / n,
            t2_ms: sums[2] / n,
            t_cloud_ms: sums[3] / n,
        });
    }

    // Fig. 7c: standard deviation per level as concurrency grows.
    let pool = TaskPool::static_load(TaskSpec::paper_static_minimax());
    let mut stability = Vec::new();
    for users in [1usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let mut sd = [0.0f64; 4];
        for (i, ty) in LEVEL_INSTANCES.iter().enumerate() {
            let mut server = Server::new(*ty);
            sd[i] = server
                .run_closed_loop(&pool, users, 15_000.0, &mut rng)
                .std_dev_ms;
        }
        stability.push(StabilityRow { users, sd_ms: sd });
    }
    Fig7Output {
        components,
        stability,
    }
}

/// Prints both panels of the figure.
pub fn print(output: &Fig7Output) {
    util::header(
        "Fig 7b: per-component times (30 concurrent users)",
        &["level", "Tresponse_ms", "T1_ms", "T2_ms", "Tcloud_ms"],
    );
    for r in &output.components {
        util::row(&[
            r.level.to_string(),
            util::f1(r.t_response_ms),
            util::f1(r.t1_ms),
            util::f1(r.t2_ms),
            util::f1(r.t_cloud_ms),
        ]);
    }
    util::header(
        "Fig 7c: response-time standard deviation per level",
        &["users", "accel1_sd", "accel2_sd", "accel3_sd", "accel4_sd"],
    );
    for r in &output.stability {
        util::row(&[
            r.users.to_string(),
            util::f1(r.sd_ms[0]),
            util::f1(r.sd_ms[1]),
            util::f1(r.sd_ms[2]),
            util::f1(r.sd_ms[3]),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcloud_dominates_and_shrinks_with_level() {
        let out = run(40, 9);
        assert_eq!(out.components.len(), 4);
        for r in &out.components {
            assert!(r.t_cloud_ms > r.t2_ms, "{r:?}");
            assert!(r.t1_ms < 1_000.0, "communication stays under a second");
            let sum = r.t1_ms + r.t2_ms + r.t_cloud_ms;
            assert!((sum - r.t_response_ms).abs() < 1.0);
        }
        // higher acceleration -> lower cloud time
        assert!(out.components[0].t_cloud_ms > out.components[3].t_cloud_ms);
        // stability: the top level varies less than level 1 at heavy load
        let heavy = out.stability.last().unwrap();
        assert!(heavy.sd_ms[0] > heavy.sd_ms[3]);
    }
}
