//! Regenerates `BENCH_prediction.json`: pruned versus naive nearest-slot
//! prediction over the acceptance-bar workload (5,000 slots × 3 groups ×
//! 200 users per group), plus the chunked **parallel** knowledge-base scan
//! versus the sequential best-first scan on a 100,000-slot single-tenant
//! history, swept over thread counts 1/2/4/8.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_prediction`.
//!
//! * default: both acceptance-bar workloads; exits non-zero below the 5×
//!   pruned-vs-naive bar, below 2× parallel-vs-serial at 4 threads, or on
//!   any forecast divergence.
//! * `--smoke`: a small CI gate — the parallel-vs-serial(-vs-naive)
//!   agreement check on a 6,000-slot history plus the pruned-vs-naive
//!   check; exits non-zero only on divergence (no speedup gates: CI runner
//!   core counts vary).
//! * `bench_prediction [slots] [users_per_group] [rounds]`: custom shape;
//!   the pruned-vs-naive 5× gate applies, the parallel sweep runs on the
//!   same shape without a speedup gate.

use mca_bench::prediction::{self, ParallelScanWorkload, PredictionWorkload};

fn parse_arg(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!("error: {name} must be a positive integer, got '{raw}'");
                eprintln!("usage: bench_prediction [--smoke | slots users_per_group rounds]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let custom = !smoke && !args.is_empty();

    let (workload, parallel_workload, rounds, pruned_gate, parallel_gate) = if smoke {
        let workload = PredictionWorkload {
            slots: 2_000,
            groups: 3,
            users_per_group: 40,
        };
        (workload, ParallelScanWorkload::smoke(), 3, None, None)
    } else if custom {
        let mut args = args.into_iter();
        let mut workload = PredictionWorkload::headline();
        workload.slots = parse_arg(args.next(), "slots", workload.slots);
        workload.users_per_group =
            parse_arg(args.next(), "users_per_group", workload.users_per_group);
        let rounds = parse_arg(args.next(), "rounds", 10);
        let mut parallel = ParallelScanWorkload::smoke();
        parallel.slots = workload.slots;
        parallel.users_per_group = workload.users_per_group;
        (workload, parallel, rounds, Some(5.0), None)
    } else {
        (
            PredictionWorkload::headline(),
            ParallelScanWorkload::headline(),
            10,
            Some(5.0),
            Some(2.0),
        )
    };

    let report = prediction::run(&workload, rounds);
    prediction::print(&report);
    println!();
    let parallel = prediction::run_parallel(&parallel_workload, rounds);
    prediction::print_parallel(&parallel);

    let json = prediction::combined_json(&report, &parallel);
    let path = "BENCH_prediction.json";
    std::fs::write(path, &json).expect("write BENCH_prediction.json");
    println!("wrote {path}");

    if !parallel.forecasts_identical {
        eprintln!("ERROR: the chunked parallel scan diverged from the serial scan");
        std::process::exit(1);
    }
    if let Some(gate) = pruned_gate {
        if report.speedup() < gate {
            eprintln!(
                "WARNING: pruned speedup {:.1}x is below the {gate}x acceptance bar",
                report.speedup()
            );
            std::process::exit(1);
        }
    }
    if let Some(gate) = parallel_gate {
        let at_4 = parallel.speedup_at(4).unwrap_or(0.0);
        if at_4 < gate {
            eprintln!(
                "WARNING: parallel speedup {at_4:.1}x at 4 threads is below the {gate}x acceptance bar",
            );
            std::process::exit(1);
        }
    }
}
