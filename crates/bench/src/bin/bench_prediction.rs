//! Regenerates `BENCH_prediction.json`: pruned versus naive nearest-slot
//! prediction over the acceptance-bar workload (5,000 slots × 3 groups ×
//! 200 users per group), the chunked **parallel** knowledge-base scan versus
//! the sequential best-first scan on a 100,000-slot single-tenant history
//! (threads 1/2/4/8), and the vantage-point **metric index** versus the
//! pruned linear scan over a 100k → 1M slot scaling sweep.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_prediction`.
//!
//! * default: all three acceptance-bar workloads; exits non-zero below the
//!   5× pruned-vs-naive bar, below the core-aware parallel bar (judged at
//!   the best thread count the runner's `available_parallelism` can
//!   exploit — a single-core runner is only held to ≥1×), below 5×
//!   indexed-vs-pruned at 1M slots, at an indexed scaling ratio ≥3× for the
//!   10× size span, or on any forecast divergence.
//! * `--smoke`: a small CI gate — serial, chunked, indexed and naive
//!   forecasts must all be bit-identical on small histories; exits non-zero
//!   only on divergence (no speedup gates: CI runner core counts vary).
//! * `bench_prediction [slots] [users_per_group] [rounds]`: custom shape;
//!   the pruned-vs-naive 5× gate and the forecast-identity gates apply, the
//!   parallel and index sweeps run on the same shape without speedup gates.

use mca_bench::prediction::{self, IndexScanWorkload, ParallelScanWorkload, PredictionWorkload};

fn parse_arg(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!("error: {name} must be a positive integer, got '{raw}'");
                eprintln!("usage: bench_prediction [--smoke | slots users_per_group rounds]");
                std::process::exit(2);
            }
        },
    }
}

/// The parallel bar scales with what the runner can exploit: a 4-core
/// machine must show ≥2× somewhere in the feasible sweep, a dual-core ≥1.2×,
/// a single core is only held to not regressing (≥1× within noise).
fn parallel_bar(available: usize) -> f64 {
    match available {
        0 | 1 => 0.9,
        2 | 3 => 1.2,
        _ => 2.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let custom = !smoke && !args.is_empty();

    let (workload, parallel_workload, index_workload, rounds, pruned_gate, speed_gates) = if smoke {
        let workload = PredictionWorkload {
            slots: 2_000,
            groups: 3,
            users_per_group: 40,
        };
        (
            workload,
            ParallelScanWorkload::smoke(),
            IndexScanWorkload::smoke(),
            3,
            None,
            false,
        )
    } else if custom {
        let mut args = args.into_iter();
        let mut workload = PredictionWorkload::headline();
        workload.slots = parse_arg(args.next(), "slots", workload.slots);
        workload.users_per_group =
            parse_arg(args.next(), "users_per_group", workload.users_per_group);
        let rounds = parse_arg(args.next(), "rounds", 10);
        let mut parallel = ParallelScanWorkload::smoke();
        parallel.slots = workload.slots;
        parallel.users_per_group = workload.users_per_group;
        let mut index = IndexScanWorkload::smoke();
        index.sizes = vec![workload.slots];
        index.users_per_group = workload.users_per_group;
        index.verify_naive_up_to = workload.slots;
        (workload, parallel, index, rounds, Some(5.0), false)
    } else {
        (
            PredictionWorkload::headline(),
            ParallelScanWorkload::headline(),
            IndexScanWorkload::headline(),
            10,
            Some(5.0),
            true,
        )
    };

    let report = prediction::run(&workload, rounds);
    prediction::print(&report);
    println!();
    let parallel = prediction::run_parallel(&parallel_workload, rounds);
    prediction::print_parallel(&parallel);
    println!();
    let index = prediction::run_index(&index_workload, rounds);
    prediction::print_index(&index);

    let json = prediction::combined_json(&report, &parallel, &index);
    let path = "BENCH_prediction.json";
    std::fs::write(path, &json).expect("write BENCH_prediction.json");
    println!("wrote {path}");

    if !parallel.forecasts_identical {
        eprintln!("ERROR: the chunked parallel scan diverged from the serial scan");
        std::process::exit(1);
    }
    if !index.forecasts_identical() {
        eprintln!("ERROR: the indexed scan diverged from the serial/chunked/naive forecast");
        std::process::exit(1);
    }
    if let Some(gate) = pruned_gate {
        if report.speedup() < gate {
            eprintln!(
                "WARNING: pruned speedup {:.1}x is below the {gate}x acceptance bar",
                report.speedup()
            );
            std::process::exit(1);
        }
    }
    if speed_gates {
        let bar = parallel_bar(parallel.available_parallelism);
        let (threads, best) = parallel
            .best_feasible_speedup()
            .expect("the headline sweep includes threads=1");
        if best < bar {
            eprintln!(
                "WARNING: best feasible parallel speedup {best:.1}x (at {threads} threads, \
                 {} cores available) is below the {bar}x acceptance bar",
                parallel.available_parallelism,
            );
            std::process::exit(1);
        }
        let at_largest = index.speedup_at_largest().unwrap_or(0.0);
        if at_largest < 5.0 {
            eprintln!(
                "WARNING: indexed speedup {at_largest:.1}x at the largest history is below \
                 the 5x acceptance bar"
            );
            std::process::exit(1);
        }
        if let Some(ratio) = index.indexed_scaling_ratio() {
            if ratio >= 3.0 {
                eprintln!(
                    "WARNING: indexed scaling ratio {ratio:.2}x for 10x more history is not \
                     sub-linear enough (bar: <3x)"
                );
                std::process::exit(1);
            }
        }
    }
}
