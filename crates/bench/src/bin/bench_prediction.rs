//! Regenerates `BENCH_prediction.json`: pruned versus naive nearest-slot
//! prediction over the acceptance-bar workload (5,000 slots × 3 groups ×
//! 200 users per group).
//!
//! Run with `cargo run --release -p mca-bench --bin bench_prediction`.
//! Optional arguments: `bench_prediction [slots] [users_per_group] [rounds]`.

use mca_bench::prediction::{self, PredictionWorkload};

fn parse_arg(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!("error: {name} must be a positive integer, got '{raw}'");
                eprintln!("usage: bench_prediction [slots] [users_per_group] [rounds]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut workload = PredictionWorkload::headline();
    workload.slots = parse_arg(args.next(), "slots", workload.slots);
    workload.users_per_group = parse_arg(args.next(), "users_per_group", workload.users_per_group);
    let rounds = parse_arg(args.next(), "rounds", 10);

    let report = prediction::run(&workload, rounds);
    prediction::print(&report);

    let json = report.to_json();
    let path = "BENCH_prediction.json";
    std::fs::write(path, &json).expect("write BENCH_prediction.json");
    println!("wrote {path}");

    if report.speedup() < 5.0 {
        eprintln!(
            "WARNING: speedup {:.1}x is below the 5x acceptance bar",
            report.speedup()
        );
        std::process::exit(1);
    }
}
