//! Regenerates Fig. 11: 3G/LTE latency per operator and time of day.
fn main() {
    let series = mca_bench::fig11::run(50, mca_bench::DEFAULT_SEED);
    mca_bench::fig11::print(&series);
}
