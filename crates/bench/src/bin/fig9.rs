//! Regenerates Fig. 9: the 8-hour, 100-user dynamic acceleration experiment.
fn main() {
    let output = mca_bench::fig9::run(100, 8.0 * 3_600_000.0, 4_000, mca_bench::DEFAULT_SEED);
    mca_bench::fig9::print(&output);
}
