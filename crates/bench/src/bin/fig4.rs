//! Regenerates Fig. 4: instance characterization and acceleration levels.
fn main() {
    let output = mca_bench::fig4::run(90_000.0, mca_bench::DEFAULT_SEED);
    mca_bench::fig4::print(&output);
}
