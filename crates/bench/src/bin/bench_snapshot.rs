//! Regenerates `BENCH_snapshot.json`: checkpoint/restore wall-clock latency
//! and wire bytes as the fleet grows, with every restore verified
//! bit-identical against the uninterrupted run before it counts.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_snapshot`.
//!
//! * default: the acceptance-bar sweep (8–128 tenants); exits non-zero if
//!   any arm's resumed drive diverges from the uninterrupted one.
//! * `--smoke`: a small CI gate (4–16 tenants); same resume-identity gate.

use mca_bench::snapshot::{self, SnapshotWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    if !smoke && !args.is_empty() {
        eprintln!("usage: bench_snapshot [--smoke]");
        std::process::exit(2);
    }
    let workload = if smoke {
        SnapshotWorkload::smoke()
    } else {
        SnapshotWorkload::headline()
    };

    let report = snapshot::run(&workload, mca_bench::DEFAULT_SEED);
    snapshot::print(&report);

    let path = "BENCH_snapshot.json";
    std::fs::write(path, report.to_json()).expect("write BENCH_snapshot.json");
    println!("wrote {path}");

    if !report.all_identical() {
        eprintln!("ERROR: a restored fleet diverged from the uninterrupted run");
        std::process::exit(1);
    }
}
