//! Regenerates `BENCH_fleet.json`: the sharded fleet engine's parallel tick
//! versus the sequential single-shard loop, with per-tenant forecasts
//! verified bit-identical to running each tenant alone — plus the Zipf-skew
//! comparison of static hash placement versus the elastic rebalancer.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_fleet`.
//!
//! * default: the acceptance-bar workload (64 tenants × 2,000 slots); exits
//!   non-zero below a 4× speedup or on any forecast divergence. The skew
//!   section must show the rebalanced fleet ≥ 1.5× over static placement at
//!   4 threads (projected from single-threaded shard-tick samples; the
//!   measured wall-clock gate additionally applies when the machine has the
//!   cores).
//! * `--smoke`: a small CI gate (16 tenants × 200 slots); exits non-zero if
//!   the fleet is slower than the single-shard baseline or forecasts
//!   diverge. Also runs the telemetry gates — histogram totals must equal
//!   event counts, the JSON snapshot must round-trip, and instrumentation
//!   overhead must stay within bounds — and writes
//!   `BENCH_fleet_telemetry.json`. The skew gate requires migrations to
//!   happen, forecasts to stay identical, and the rebalanced fleet to beat
//!   static placement ≥ 1.2× projected.
//! * `bench_fleet [tenants] [slots] [users_per_tenant]`: custom shape, no
//!   speedup gate and no skew section (forecast divergence still fails).

use mca_bench::fleet::{self, FleetWorkload, SkewWorkload};

fn parse_arg(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!("error: {name} must be a positive integer, got '{raw}'");
                eprintln!("usage: bench_fleet [--smoke | tenants slots users_per_tenant]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let custom = !smoke && !args.is_empty();
    let (workload, speedup_gate) = if smoke {
        (FleetWorkload::smoke(), Some(1.0))
    } else if custom {
        let mut args = args.into_iter();
        let mut workload = FleetWorkload::headline();
        workload.tenants = parse_arg(args.next(), "tenants", workload.tenants);
        workload.slots = parse_arg(args.next(), "slots", workload.slots);
        workload.users_per_tenant =
            parse_arg(args.next(), "users_per_tenant", workload.users_per_tenant);
        (workload, None)
    } else {
        (FleetWorkload::headline(), Some(4.0))
    };
    // the rebalancer acceptance bar is 1.5x at the headline shape; the smoke
    // shape is smaller and gates a little looser against CI noise
    let skew = if custom {
        None
    } else if smoke {
        Some((SkewWorkload::smoke(), 1.2))
    } else {
        Some((SkewWorkload::headline(), 1.5))
    };

    let report = fleet::run(&workload, mca_bench::DEFAULT_SEED);
    fleet::print(&report);
    let skew_report = skew.as_ref().map(|(skew_workload, _)| {
        let skew_report = fleet::run_skewed(skew_workload, mca_bench::DEFAULT_SEED);
        fleet::print_skewed(&skew_report);
        skew_report
    });

    let json = match &skew_report {
        Some(skew_report) => report.to_json_with_skew(skew_report),
        None => report.to_json(),
    };
    let path = "BENCH_fleet.json";
    std::fs::write(path, &json).expect("write BENCH_fleet.json");
    println!("wrote {path}");

    if !report.forecasts_identical {
        eprintln!("ERROR: fleet forecasts diverged from the tenant-alone replay");
        std::process::exit(1);
    }
    if let Some(gate) = speedup_gate {
        if report.speedup() < gate {
            eprintln!(
                "WARNING: speedup {:.1}x is below the {gate}x acceptance bar",
                report.speedup()
            );
            std::process::exit(1);
        }
    }

    if let (Some(skew_report), Some((skew_workload, gate))) = (&skew_report, &skew) {
        if !skew_report.forecasts_identical {
            eprintln!("ERROR: rebalancing changed the forecasts or metrics");
            std::process::exit(1);
        }
        if skew_report.migrations == 0 {
            eprintln!("ERROR: the Zipf skew triggered no migrations");
            std::process::exit(1);
        }
        if skew_report.projected_speedup() < *gate {
            eprintln!(
                "ERROR: rebalanced projected speedup {:.2}x is below the {gate}x bar",
                skew_report.projected_speedup()
            );
            std::process::exit(1);
        }
        // the wall-clock comparison is only meaningful with the cores to
        // run the target thread count; a single-core runner gates on the
        // projected model above instead
        if skew_report.available_parallelism >= skew_workload.threads
            && skew_report.measured_speedup() < *gate
        {
            eprintln!(
                "ERROR: rebalanced measured speedup {:.2}x is below the {gate}x bar \
                 ({} cores available)",
                skew_report.measured_speedup(),
                skew_report.available_parallelism
            );
            std::process::exit(1);
        }
    }

    if smoke {
        let telemetry = fleet::telemetry_smoke(&workload, mca_bench::DEFAULT_SEED);
        fleet::print_telemetry_smoke(&telemetry);
        let path = "BENCH_fleet_telemetry.json";
        std::fs::write(path, telemetry.to_json()).expect("write BENCH_fleet_telemetry.json");
        println!("wrote {path}");
        if !telemetry.passed() {
            eprintln!("ERROR: the telemetry smoke gates failed");
            std::process::exit(1);
        }
    }
}
