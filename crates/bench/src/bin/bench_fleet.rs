//! Regenerates `BENCH_fleet.json`: the sharded fleet engine's parallel tick
//! versus the sequential single-shard loop, with per-tenant forecasts
//! verified bit-identical to running each tenant alone.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_fleet`.
//!
//! * default: the acceptance-bar workload (64 tenants × 2,000 slots); exits
//!   non-zero below a 4× speedup or on any forecast divergence.
//! * `--smoke`: a small CI gate (16 tenants × 200 slots); exits non-zero if
//!   the fleet is slower than the single-shard baseline or forecasts
//!   diverge. Also runs the telemetry gates — histogram totals must equal
//!   event counts, the JSON snapshot must round-trip, and instrumentation
//!   overhead must stay within bounds — and writes
//!   `BENCH_fleet_telemetry.json`.
//! * `bench_fleet [tenants] [slots] [users_per_tenant]`: custom shape, no
//!   speedup gate (forecast divergence still fails).

use mca_bench::fleet::{self, FleetWorkload};

fn parse_arg(value: Option<String>, name: &str, default: usize) -> usize {
    match value {
        None => default,
        Some(raw) => match raw.parse() {
            Ok(parsed) if parsed > 0 => parsed,
            _ => {
                eprintln!("error: {name} must be a positive integer, got '{raw}'");
                eprintln!("usage: bench_fleet [--smoke | tenants slots users_per_tenant]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let custom = !smoke && !args.is_empty();
    let (workload, speedup_gate) = if smoke {
        (FleetWorkload::smoke(), Some(1.0))
    } else if custom {
        let mut args = args.into_iter();
        let mut workload = FleetWorkload::headline();
        workload.tenants = parse_arg(args.next(), "tenants", workload.tenants);
        workload.slots = parse_arg(args.next(), "slots", workload.slots);
        workload.users_per_tenant =
            parse_arg(args.next(), "users_per_tenant", workload.users_per_tenant);
        (workload, None)
    } else {
        (FleetWorkload::headline(), Some(4.0))
    };

    let report = fleet::run(&workload, mca_bench::DEFAULT_SEED);
    fleet::print(&report);

    let json = report.to_json();
    let path = "BENCH_fleet.json";
    std::fs::write(path, &json).expect("write BENCH_fleet.json");
    println!("wrote {path}");

    if !report.forecasts_identical {
        eprintln!("ERROR: fleet forecasts diverged from the tenant-alone replay");
        std::process::exit(1);
    }
    if let Some(gate) = speedup_gate {
        if report.speedup() < gate {
            eprintln!(
                "WARNING: speedup {:.1}x is below the {gate}x acceptance bar",
                report.speedup()
            );
            std::process::exit(1);
        }
    }

    if smoke {
        let telemetry = fleet::telemetry_smoke(&workload, mca_bench::DEFAULT_SEED);
        fleet::print_telemetry_smoke(&telemetry);
        let path = "BENCH_fleet_telemetry.json";
        std::fs::write(path, telemetry.to_json()).expect("write BENCH_fleet_telemetry.json");
        println!("wrote {path}");
        if !telemetry.passed() {
            eprintln!("ERROR: the telemetry smoke gates failed");
            std::process::exit(1);
        }
    }
}
