//! Regenerates Fig. 7: per-component times and per-level stability.
fn main() {
    let output = mca_bench::fig7::run(200, mca_bench::DEFAULT_SEED);
    mca_bench::fig7::print(&output);
}
