//! Regenerates Fig. 6: the t2.nano / t2.micro anomaly.
fn main() {
    let rows = mca_bench::fig6::run(90_000.0, mca_bench::DEFAULT_SEED);
    mca_bench::fig6::print(&rows);
}
