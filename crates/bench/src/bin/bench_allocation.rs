//! Regenerates `BENCH_allocation.json`: the sparse revised simplex with
//! warm-started branch-and-bound versus the cold dense tableau on the
//! allocation ILP, swept across instance-type catalogue sizes.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_allocation`.
//!
//! * default: the acceptance-bar sweep (6–48 instance-type variables, 48
//!   forecasts per point); exits non-zero below a 3× speedup at ≥ 32
//!   variables or if any allocation differs between the backends.
//! * `--smoke`: a small CI gate; exits non-zero if the revised path is
//!   slower than dense at ≥ 32 variables or any allocation differs.

use mca_bench::allocation::{self, AllocationWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    if !smoke && !args.is_empty() {
        eprintln!("usage: bench_allocation [--smoke]");
        std::process::exit(2);
    }
    let (workload, speedup_gate) = if smoke {
        (AllocationWorkload::smoke(), 1.0)
    } else {
        (AllocationWorkload::headline(), 3.0)
    };

    let report = allocation::run(&workload, mca_bench::DEFAULT_SEED);
    allocation::print(&report);

    let json = report.to_json();
    let path = "BENCH_allocation.json";
    std::fs::write(path, &json).expect("write BENCH_allocation.json");
    println!("wrote {path}");

    if !report.all_identical() {
        eprintln!("ERROR: revised allocations diverged from the dense reference");
        std::process::exit(1);
    }
    match report.min_speedup_at(32) {
        Some(speedup) if speedup < speedup_gate => {
            eprintln!(
                "ERROR: speedup {speedup:.1}x at >=32 instance types is below the \
                 {speedup_gate}x acceptance bar"
            );
            std::process::exit(1);
        }
        Some(speedup) => println!(
            "gate: {speedup:.1}x at >=32 instance types (bar {speedup_gate}x), \
             allocations identical"
        ),
        None => {
            eprintln!("ERROR: the sweep has no >=32 instance-type row to gate on");
            std::process::exit(1);
        }
    }
}
