//! Regenerates `BENCH_datacenter.json`: the Zipf fleet billed against
//! simulated datacenters under first-fit, best-fit and worst-fit placement,
//! with an arithmetic-billing baseline run in lockstep.
//!
//! Run with `cargo run --release -p mca-bench --bin bench_datacenter`.
//!
//! * default: the acceptance-bar workload (24 tenants × 300 slots).
//! * `--smoke`: a small CI gate (12 tenants × 72 slots).
//!
//! Both shapes gate identically, on the two contracts of the datacenter
//! refactor: every arm's forecasts and total cost must match the arithmetic
//! baseline bit for bit (the datacenter is pure accounting), no placement
//! may fail on the paper-default host shape, and the policy sweep must show
//! a measurable energy spread between worst-fit and best-fit at that equal
//! cost — the tradeoff the sweep exists to expose.

use mca_bench::datacenter::{self, DatacenterWorkload};

/// Minimum worst-fit-over-best-fit energy ratio: consolidation must power
/// down enough hosts to be visible above float noise.
const ENERGY_SPREAD_GATE: f64 = 1.01;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let workload = if smoke {
        DatacenterWorkload::smoke()
    } else {
        DatacenterWorkload::headline()
    };

    let report = datacenter::run(&workload, mca_bench::DEFAULT_SEED);
    datacenter::print(&report);

    let json = report.to_json();
    let path = "BENCH_datacenter.json";
    std::fs::write(path, &json).expect("write BENCH_datacenter.json");
    println!("wrote {path}");

    if !report.forecasts_identical {
        eprintln!("ERROR: datacenter billing changed a forecast");
        std::process::exit(1);
    }
    if !report.costs_identical {
        eprintln!("ERROR: a policy arm billed a different total than the arithmetic baseline");
        std::process::exit(1);
    }
    if !report.no_placement_failures() {
        eprintln!("ERROR: a placement failed on the paper-default host shape");
        std::process::exit(1);
    }
    if report.energy_spread() < ENERGY_SPREAD_GATE {
        eprintln!(
            "ERROR: energy spread {:.3}x is below the {ENERGY_SPREAD_GATE}x bar \
             (consolidation saved no measurable energy)",
            report.energy_spread()
        );
        std::process::exit(1);
    }
}
