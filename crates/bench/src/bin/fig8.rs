//! Regenerates Fig. 8: routing overhead and the saturation sweep.
fn main() {
    let output = mca_bench::fig8::run(250, 60_000.0, mca_bench::DEFAULT_SEED);
    mca_bench::fig8::print(&output);
}
