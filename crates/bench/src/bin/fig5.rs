//! Regenerates Fig. 5: differences between acceleration levels.
fn main() {
    let output = mca_bench::fig5::run(90_000.0, mca_bench::DEFAULT_SEED);
    mca_bench::fig5::print(&output);
}
