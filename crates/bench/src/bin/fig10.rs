//! Regenerates Fig. 10: prediction accuracy, workload response times and
//! promotion rate (16-hour study).
fn main() {
    let output = mca_bench::fig10::run(100, 16.0 * 3_600_000.0, 8_000, 16, mca_bench::DEFAULT_SEED);
    mca_bench::fig10::print(&output);
}
