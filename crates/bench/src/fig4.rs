//! Fig. 4 — per-instance characterization: response time vs concurrent users
//! for the six general-purpose instances, plus the acceleration-level
//! classification derived from it.

use crate::util;
use mca_cloudsim::{InstanceBenchmark, InstanceType, LevelClassification};
use mca_offload::TaskPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Output of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// One characterization per instance of the Fig. 4 set.
    pub benchmarks: Vec<InstanceBenchmark>,
    /// The acceleration levels derived from the characterization.
    pub classification: LevelClassification,
}

/// Runs the characterization. `duration_per_level_ms` controls the simulated
/// measurement time per load level (the paper uses 3 hours per server; a few
/// simulated minutes already give stable statistics).
pub fn run(duration_per_level_ms: f64, seed: u64) -> Fig4Output {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = TaskPool::paper_default();
    let benchmarks: Vec<InstanceBenchmark> = InstanceType::FIG4_SET
        .iter()
        .map(|&ty| {
            InstanceBenchmark::run(
                ty,
                &pool,
                &InstanceBenchmark::PAPER_LOAD_LEVELS,
                duration_per_level_ms,
                500.0,
                &mut rng,
            )
        })
        .collect();
    let classification = LevelClassification::classify(&benchmarks, 1.5);
    Fig4Output {
        benchmarks,
        classification,
    }
}

/// Prints the figure as text tables.
pub fn print(output: &Fig4Output) {
    for b in &output.benchmarks {
        util::header(
            &format!(
                "Fig 4: {} (acceleration level {})",
                b.instance_type,
                output
                    .classification
                    .level_of(b.instance_type)
                    .unwrap_or(255)
            ),
            &["users", "mean_ms", "sd_ms", "p5_ms", "p95_ms"],
        );
        for p in &b.points {
            util::row(&[
                p.users.to_string(),
                util::f1(p.mean_ms),
                util::f1(p.std_dev_ms),
                util::f1(p.p5_ms),
                util::f1(p.p95_ms),
            ]);
        }
    }
    util::header(
        "Fig 4: acceleration level classification",
        &["level", "instances", "capacity"],
    );
    for level in &output.classification.levels {
        let members: Vec<String> = level.members.iter().map(|m| m.to_string()).collect();
        util::row(&[
            level.level.to_string(),
            members.join(","),
            level.capacity.to_string(),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_has_expected_shape() {
        let out = run(20_000.0, 7);
        assert_eq!(out.benchmarks.len(), 6);
        assert!(out.classification.num_levels() >= 3);
        // micro never classifies above nano
        let micro = out.classification.level_of(InstanceType::T2Micro).unwrap();
        let nano = out.classification.level_of(InstanceType::T2Nano).unwrap();
        assert!(micro <= nano);
        // the m4 is the top level
        let m4 = out
            .classification
            .level_of(InstanceType::M4_10XLarge)
            .unwrap();
        assert_eq!(m4 as usize, out.classification.num_levels() - 1);
    }
}
