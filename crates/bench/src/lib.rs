//! # mca-bench — evaluation harness
//!
//! One module per figure of the paper's evaluation (§VI). Every module
//! exposes a `run(...)` function that produces the series/rows of the figure
//! and a `print(...)` helper that writes them as an aligned text table, so
//! the binaries (`cargo run -p mca-bench --bin fig4` … `fig11`) regenerate
//! the paper's figures and the Criterion benches time the underlying
//! machinery.
//!
//! The harness is calibrated for *shape* fidelity, not absolute numbers: the
//! back-end is the `mca-cloudsim` simulator rather than EC2 hardware. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison of every figure.
//!
//! Five performance harnesses ride alongside the figures: [`prediction`]
//! (pruned versus naive nearest-slot search, `bench_prediction` →
//! `BENCH_prediction.json`), [`fleet`] (sharded multi-tenant engine versus
//! the single-shard loop, `bench_fleet` → `BENCH_fleet.json`),
//! [`allocation`] (revised simplex + warm-started branch-and-bound versus
//! the cold dense tableau, `bench_allocation` → `BENCH_allocation.json`),
//! [`datacenter`] (the placement-policy sweep of the datacenter-backed
//! bill stage, `bench_datacenter` → `BENCH_datacenter.json`) and
//! [`snapshot`] (checkpoint/restore latency and wire bytes versus fleet
//! size, `bench_snapshot` → `BENCH_snapshot.json`).

#![forbid(unsafe_code)]

pub mod allocation;
pub mod datacenter;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod prediction;
pub mod snapshot;
pub mod util;

/// Default RNG seed used by every figure harness so that regenerated figures
/// are reproducible run-to-run.
pub const DEFAULT_SEED: u64 = 20170605;
