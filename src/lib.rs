//! # mobile-code-acceleration
//!
//! Umbrella crate for the reproduction of *Modeling Mobile Code Acceleration
//! in the Cloud* (Flores et al., ICDCS 2017). It re-exports the workspace
//! crates under stable module names so that examples and downstream users can
//! depend on a single crate:
//!
//! * [`core`] (`mca-core`) — acceleration groups, edit-distance workload
//!   prediction, ILP resource allocation, the SDN-accelerator and the
//!   closed-loop [`core::System`].
//! * [`cloudsim`] (`mca-cloudsim`) — the EC2-like cloud substrate simulator.
//! * [`fleet`] (`mca-fleet`) — the multi-tenant sharded prediction/allocation
//!   engine: per-tenant knowledge bases, a parallel provisioning tick and
//!   the unified streaming ingestion API ([`fleet::FleetDriver`] over
//!   trace-, log-, mix- and stream-backed record sources).
//! * [`telemetry`] (`mca-telemetry`) — the instrumentation core the fleet
//!   measures itself with: stage timers over pluggable clocks, fixed-bucket
//!   latency histograms with exact tail quantiles, and the
//!   Prometheus-text / versioned-JSON metrics exposition pipeline.
//! * [`offload`] (`mca-offload`) — the computational task pool and offloading
//!   runtime.
//! * [`mobile`] (`mca-mobile`) — device profiles, batteries, the client-side
//!   moderator and usage-session traces.
//! * [`network`] (`mca-network`) — 3G/LTE latency models and NetRadar-style
//!   campaigns.
//! * [`workload`] (`mca-workload`) — concurrent and inter-arrival workload
//!   generation.
//! * [`lp`] (`mca-lp`) — the simplex + branch-and-bound ILP solver.
//! * [`snapshot`] (`mca-snapshot`) — the versioned, CRC-guarded checkpoint
//!   wire format behind durable fleet sessions
//!   ([`fleet::FleetEngine::checkpoint`] / restore).
//!
//! # Quick start
//!
//! ```
//! use mobile_code_acceleration::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut system = System::new(SystemConfig::paper_three_groups());
//! let workload = WorkloadGenerator::inter_arrival(
//!     10,
//!     TaskPool::static_load(TaskSpec::paper_static_minimax()),
//! )
//! .generate(5.0 * 60_000.0, &mut rng);
//! let report = system.run(&workload, &mut rng);
//! assert!(report.mean_response_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mca_cloudsim as cloudsim;
pub use mca_core as core;
pub use mca_fleet as fleet;
pub use mca_lp as lp;
pub use mca_mobile as mobile;
pub use mca_network as network;
pub use mca_offload as offload;
pub use mca_snapshot as snapshot;
pub use mca_telemetry as telemetry;
pub use mca_workload as workload;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use mca_cloudsim::{
        BillingMeter, Datacenter, DatacenterConfig, Host, InstanceBenchmark, InstancePool,
        InstanceType, LevelClassification, PlacementError, PlacementKind, PlacementPolicy,
        PowerModel, Server, SlaModel,
    };
    pub use mca_core::{
        accuracy, cross_validate, AccelerationGroups, Allocation, AllocationPolicy, BillingBackend,
        BillingEngine, DatacenterUsage, DistanceKind, IndexPolicy, ParallelismPolicy,
        PredictionStrategy, ResourceAllocator, SdnAccelerator, SlotHistory, System, SystemConfig,
        SystemReport, TimeSlot, WorkloadPredictor,
    };
    pub use mca_fleet::{
        DriveReport, FleetDriver, FleetEngine, FleetError, FleetMetrics, FleetTelemetry,
        RecordSource, ShardRouter, SlotRecord, SourceBatch, TelemetryMode, TenantShard,
    };
    pub use mca_mobile::{DeviceClass, DeviceProfile, Moderator, PromotionPolicy, UsageStudy};
    pub use mca_network::{CellularNetwork, NetRadarCampaign, Operator, Technology};
    pub use mca_offload::{
        AccelerationGroupId, OffloadRequest, TaskKind, TaskPool, TaskSpec, TenantId, UserId,
    };
    pub use mca_snapshot::{Restore, Snapshot, SnapshotError, SnapshotStats};
    pub use mca_workload::{ArrivalTrace, DoublingRateScenario, TenantMix, WorkloadGenerator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let config = SystemConfig::paper_three_groups();
        assert_eq!(config.groups.len(), 3);
        let pool = TaskPool::paper_default();
        assert_eq!(pool.len(), 10);
        assert_eq!(InstanceType::ALL.len(), 8);
        // the cloudsim billing/datacenter surface is reachable flat
        let meter = BillingMeter::new();
        assert_eq!(meter.total_cost(), 0.0);
        let datacenter = Datacenter::new(&DatacenterConfig::paper_default());
        assert_eq!(datacenter.placement_kind(), PlacementKind::FirstFit);
        assert_eq!(PlacementKind::ALL.len(), 3);
    }
}
