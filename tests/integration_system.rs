//! End-to-end behaviour of the closed-loop system: the headline claims of the
//! paper's evaluation, checked against the simulator at a reduced scale.

use mobile_code_acceleration::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn static_minimax_workload(users: usize, duration_ms: f64, seed: u64) -> ArrivalTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    WorkloadGenerator::inter_arrival(
        users,
        TaskPool::static_load(TaskSpec::paper_static_minimax()),
    )
    .generate(duration_ms, &mut rng)
}

#[test]
fn sdn_routing_overhead_is_about_150_ms_of_the_total() {
    // §I / Fig. 8a: the SDN component introduces ≈150 ms, "a fair price" in
    // the total response time.
    let mut rng = StdRng::seed_from_u64(1);
    let workload = static_minimax_workload(10, 3.0 * 60_000.0, 2);
    let mut system = System::new(SystemConfig::paper_three_groups().with_slot_length_ms(60_000.0));
    let report = system.run(&workload, &mut rng);
    let mean_t2: f64 =
        report.records.iter().map(|r| r.t2_ms).sum::<f64>() / report.records.len() as f64;
    assert!(
        (mean_t2 - 150.0).abs() < 20.0,
        "mean routing overhead {mean_t2} ms"
    );
    // routing is a small fraction of the level-1 response time under load
    assert!(mean_t2 < report.mean_response_ms * 0.2);
}

#[test]
fn promotions_lower_the_response_time_users_perceive() {
    // Fig. 9 / Fig. 10c: promoted users perceive shorter response times, and
    // the overall response time drops as the workload migrates upwards.
    let mut rng = StdRng::seed_from_u64(3);
    let workload = static_minimax_workload(12, 10.0 * 60_000.0, 4);
    let mut promoted_system = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(2.0 * 60_000.0)
            .with_promotion_policy(PromotionPolicy::ResponseTimeThreshold {
                threshold_ms: 800.0,
            }),
    );
    let promoted = promoted_system.run(&workload, &mut rng);

    let mut rng = StdRng::seed_from_u64(3);
    let mut static_system = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(2.0 * 60_000.0)
            .with_promotion_policy(PromotionPolicy::Never),
    );
    let unpromoted = static_system.run(&workload, &mut rng);

    assert!(promoted.promotions.len() > 10);
    assert_eq!(unpromoted.promotions.len(), 0);
    assert!(
        promoted.mean_response_ms < unpromoted.mean_response_ms * 0.8,
        "promoted {} vs unpromoted {}",
        promoted.mean_response_ms,
        unpromoted.mean_response_ms
    );
    assert!(promoted.promoted_user_fraction(AccelerationGroupId(1)) > 0.9);
}

#[test]
fn prediction_accuracy_is_high_on_a_steady_workload() {
    // §VI-C-2: the model predicts the per-group workload with high accuracy
    // once enough history is available (≈87.5 % in the paper).
    let mut rng = StdRng::seed_from_u64(5);
    let workload = static_minimax_workload(20, 16.0 * 60_000.0, 6);
    let mut system = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(60_000.0)
            .with_promotion_policy(PromotionPolicy::Never),
    );
    let report = system.run(&workload, &mut rng);
    let accuracy = report
        .mean_prediction_accuracy()
        .expect("several slots closed");
    assert!(
        accuracy > 0.8,
        "steady workload should be predicted well, got {accuracy}"
    );
    assert!(accuracy <= 1.0);
}

#[test]
fn ilp_allocation_is_cheaper_than_overprovisioning_for_the_same_workload() {
    // §IV-C / §VII-4: the point of the allocation model is to avoid paying
    // for capacity the workload does not need.
    let workload = static_minimax_workload(15, 8.0 * 60_000.0, 7);
    let mut rng_a = StdRng::seed_from_u64(8);
    let ilp_report = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(2.0 * 60_000.0)
            .with_allocation_policy(AllocationPolicy::IlpExact),
    )
    .run(&workload, &mut rng_a);
    let mut rng_b = StdRng::seed_from_u64(8);
    let over_report = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(2.0 * 60_000.0)
            .with_allocation_policy(AllocationPolicy::OverProvision),
    )
    .run(&workload, &mut rng_b);
    assert!(
        ilp_report.total_cost <= over_report.total_cost,
        "ilp ${} vs over-provisioning ${}",
        ilp_report.total_cost,
        over_report.total_cost
    );
    // both serve every request
    assert_eq!(ilp_report.records.len(), workload.len());
    assert_eq!(over_report.records.len(), workload.len());
}

#[test]
fn trace_records_always_decompose_into_t1_t2_tcloud() {
    // Fig. 7a: T_response = T1 + T2 + T_cloud for every logged request.
    let mut rng = StdRng::seed_from_u64(9);
    let workload = static_minimax_workload(8, 4.0 * 60_000.0, 10);
    let mut system = System::new(SystemConfig::paper_three_groups().with_slot_length_ms(60_000.0));
    let report = system.run(&workload, &mut rng);
    assert!(!report.records.is_empty());
    for record in &report.records {
        assert!(record.is_consistent(1e-6), "{record:?}");
        assert!(record.t_cloud_ms > 0.0);
        assert!(record.battery_level >= 0.0 && record.battery_level <= 100.0);
    }
    // battery levels decrease over time for each user (radio drain)
    for perception in &report.perceptions {
        let levels: Vec<f64> = report
            .records
            .iter()
            .filter(|r| r.user == perception.user)
            .map(|r| r.battery_level)
            .collect();
        assert!(
            levels.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "battery must not recharge"
        );
    }
}

#[test]
fn battery_aware_policy_promotes_low_battery_devices() {
    // §VII-3: the battery-aware policy promotes devices whose battery drops,
    // shortening the time their radio stays active.
    let mut rng = StdRng::seed_from_u64(11);
    let workload = static_minimax_workload(5, 6.0 * 60_000.0, 12);
    let mut system = System::new(
        SystemConfig::paper_three_groups()
            .with_slot_length_ms(2.0 * 60_000.0)
            .with_promotion_policy(PromotionPolicy::BatteryAware {
                battery_threshold_percent: 99.99,
                latency_threshold_ms: f64::INFINITY,
            }),
    );
    let report = system.run(&workload, &mut rng);
    // with the threshold effectively always met, every device is promoted to
    // the ceiling almost immediately
    assert!(report.promoted_user_fraction(AccelerationGroupId(1)) > 0.99);
}
