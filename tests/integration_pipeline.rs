//! Cross-crate integration of the full provisioning pipeline:
//! benchmark the cloud → classify into acceleration levels → build groups →
//! predict workload → allocate instances → apply the allocation to the pool →
//! route requests through the SDN-accelerator.

use mobile_code_acceleration::core::{TimeSlot, WorkloadPredictor};
use mobile_code_acceleration::offload::{OffloadRequest, RequestId};
use mobile_code_acceleration::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn benchmark_to_groups_to_allocation_to_pool() {
    let mut rng = StdRng::seed_from_u64(99);
    let pool_tasks = TaskPool::paper_default();

    // 1. Characterize a subset of instances (the Fig. 4 set).
    let benchmarks: Vec<InstanceBenchmark> = InstanceType::FIG4_SET
        .iter()
        .map(|&ty| {
            InstanceBenchmark::run(
                ty,
                &pool_tasks,
                &[1, 20, 50, 100],
                20_000.0,
                500.0,
                &mut rng,
            )
        })
        .collect();
    let classification = LevelClassification::classify(&benchmarks, 1.5);
    assert!(classification.num_levels() >= 3);

    // 2. Build acceleration groups from the classification.
    let groups = AccelerationGroups::from_classification(&classification);
    assert_eq!(groups.len(), classification.num_levels());

    // 3. Learn a tiny history and forecast the next slot.
    let mut predictor = WorkloadPredictor::new(groups.ids(), 3_600_000.0);
    for load in [30u32, 45, 60] {
        let mut slot = TimeSlot::new(0);
        for u in 0..load {
            slot.assign(groups.lowest().id, UserId(u));
        }
        for u in 0..load / 3 {
            slot.assign(groups.highest().id, UserId(1_000 + u));
        }
        predictor.observe_slot(slot);
    }
    let mut current = TimeSlot::new(3);
    for u in 0..55u32 {
        current.assign(groups.lowest().id, UserId(u));
    }
    let forecast = predictor.predict(&current).expect("history present");
    assert!(forecast.total() > 0);

    // 4. Allocate for the forecast and apply it to an instance pool.
    let allocator = ResourceAllocator::new(groups.clone());
    let allocation = allocator
        .allocate(&forecast)
        .expect("forecast fits the cap");
    assert!(allocation.covers(&forecast));
    let mut pool = InstancePool::new();
    pool.apply_allocation(&allocation.pool_allocation(), 0.0)
        .expect("within account cap");
    assert_eq!(pool.len(), allocation.total_instances());

    // 5. Route a burst of requests through the SDN front-end backed by the
    //    same groups and verify every record is timing-consistent.
    let config = mobile_code_acceleration::core::SystemConfig {
        groups,
        ..SystemConfig::paper_three_groups()
    };
    let mut sdn = SdnAccelerator::new(config);
    for i in 0..50u32 {
        let request = OffloadRequest::new(
            RequestId(u64::from(i)),
            UserId(i),
            AccelerationGroupId(1),
            TaskSpec::paper_static_minimax(),
            80.0,
            f64::from(i) * 500.0,
        );
        let routed = sdn
            .handle(&request, f64::from(i) * 500.0, &mut rng)
            .expect("route");
        assert!(routed.record.is_consistent(1e-6));
        assert!(routed.record.round_trip_ms > 0.0);
    }
    assert_eq!(sdn.log().len(), 50);
    assert_eq!(sdn.requests_dropped(), 0);

    // 6. Tear the pool down and check the bill is positive and hourly-rounded.
    pool.terminate_all(45.0 * 60_000.0);
    assert!(pool.billing().total_cost() > 0.0);
    assert_eq!(pool.billing().total_hours() % 1.0, 0.0);
}

#[test]
fn usage_study_drives_workload_generation() {
    let mut rng = StdRng::seed_from_u64(123);
    // The 3-month study yields the 100–5000 ms inter-arrival calibration that
    // the generator consumes.
    let study = UsageStudy::synthesize(6, 10, &mut rng);
    assert!(study.total_sessions() > 0);
    let sampler = study.inter_arrival_sampler();
    let generator = mobile_code_acceleration::workload::WorkloadGenerator::new(
        mobile_code_acceleration::workload::GenerationMode::InterArrival { users: 20, sampler },
        TaskPool::paper_default(),
    );
    let trace = generator.generate(5.0 * 60_000.0, &mut rng);
    assert!(trace.len() > 100);
    assert_eq!(trace.distinct_users(), 20);
    // every arrival carries a valid task from the pool
    assert!(trace.iter().all(|a| a.task.work_units() > 0.0));
}

#[test]
fn network_assumption_holds_for_offload_payloads() {
    // §IV assumption (c): over LTE, payload transfer adds no meaningful
    // overhead for homogeneous-model application states.
    let transfer =
        mobile_code_acceleration::network::TransferModel::for_technology(Technology::Lte);
    for task in TaskPool::paper_default().tasks() {
        assert!(
            transfer.transfer_is_negligible(task.state_bytes(), 256, 100.0),
            "{task}: {} bytes",
            task.state_bytes()
        );
    }
    // ... but a heavyweight payload over 3G would violate the assumption.
    let threeg =
        mobile_code_acceleration::network::TransferModel::for_technology(Technology::ThreeG);
    assert!(!threeg.transfer_is_negligible(2_000_000, 1_000, 50.0));
}
