//! Allocation-discipline gate for the nearest-slot scan: once a predictor
//! is warm, one prediction must allocate only a small constant number of
//! times (the forecast itself plus the per-probe scratch), **independent of
//! the history length** — the scan reuses one `DistanceScratch` per chunk
//! (and per index probe) instead of allocating per candidate.
//!
//! This lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use mobile_code_acceleration::core::{
    DistanceKind, IndexPolicy, ParallelismPolicy, WorkloadPredictor,
};
use mobile_code_acceleration::offload::{AccelerationGroupId, UserId};
use mobile_code_acceleration::prelude::TimeSlot;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-wide, so concurrently running tests
/// would inflate each other's measurements; every measured section holds
/// this lock.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(mut body: impl FnMut()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    body();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const GROUPS: [AccelerationGroupId; 3] = [
    AccelerationGroupId(1),
    AccelerationGroupId(2),
    AccelerationGroupId(3),
];

/// A drifting synthetic slot, deterministic and allocation-cheap: each
/// group's population is a contiguous id window sliding one id per slot.
fn drifting_slot(index: usize, users_per_group: u32) -> TimeSlot {
    let mut slot = TimeSlot::new(index);
    for (g, group) in GROUPS.into_iter().enumerate() {
        let base = g as u32 * 1_000_000 + index as u32;
        for u in 0..users_per_group {
            slot.assign(group, UserId(base + u));
        }
    }
    slot
}

fn warmed_predictor(
    slots: usize,
    configure: impl Fn(WorkloadPredictor) -> WorkloadPredictor,
) -> WorkloadPredictor {
    let mut predictor = configure(WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0));
    for index in 0..slots {
        predictor.observe_slot(drifting_slot(index, 24));
    }
    predictor
}

/// Allocations of one warmed prediction at two history sizes. The warm-up
/// predict lets every lazily grown buffer (scratch rows, bit-vectors,
/// forecast) reach its steady-state capacity first.
fn steady_state_allocations(
    configure: impl Fn(WorkloadPredictor) -> WorkloadPredictor + Copy,
) -> (usize, usize) {
    let _serialized = MEASURE_LOCK.lock().expect("no poisoned measurements");
    let measure = |slots: usize| {
        let predictor = warmed_predictor(slots, configure);
        let probe = drifting_slot(slots, 24);
        predictor.predict(&probe).expect("non-empty history");
        allocations_during(|| {
            std::hint::black_box(predictor.predict(&probe).expect("non-empty history"));
        })
    };
    (measure(500), measure(2_000))
}

#[test]
fn serial_set_edit_scan_allocates_a_small_constant() {
    let (small, large) = steady_state_allocations(|p| p);
    assert!(
        small < 64,
        "one warmed prediction allocated {small} times; expected a small constant"
    );
    assert!(
        large <= small + 8,
        "allocations grew with history length ({small} at 500 slots, {large} at 2000): \
         the scan is allocating per candidate"
    );
}

#[test]
fn chunked_scan_reuses_one_scratch_per_chunk() {
    let configure = |p: WorkloadPredictor| {
        p.with_parallelism(ParallelismPolicy::parallel(4).with_min_parallel_slots(1))
    };
    let (small, large) = steady_state_allocations(configure);
    // 4 chunks: one scratch (a handful of buffers) per chunk plus rayon's
    // own join bookkeeping — still a constant, never per candidate
    assert!(
        small < 160,
        "one warmed chunked prediction allocated {small} times; expected a per-chunk constant"
    );
    assert!(
        large <= small + 32,
        "chunked-scan allocations grew with history length ({small} at 500 slots, {large} at \
         2000): a chunk is allocating per candidate"
    );
}

#[test]
fn levenshtein_scan_reuses_the_distance_scratch() {
    let configure = |p: WorkloadPredictor| p.with_distance(DistanceKind::Levenshtein);
    let (small, large) = steady_state_allocations(configure);
    assert!(
        small < 64,
        "one warmed Levenshtein prediction allocated {small} times; expected a small constant"
    );
    assert!(
        large <= small + 8,
        "Levenshtein-scan allocations grew with history length ({small} at 500 slots, {large} \
         at 2000): the DistanceScratch is not being reused"
    );
}

#[test]
fn indexed_probe_allocates_a_small_constant() {
    let configure = |p: WorkloadPredictor| {
        p.with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(16))
    };
    let (small, large) = steady_state_allocations(configure);
    let probe_check = warmed_predictor(500, configure);
    assert!(probe_check.index_active(), "the index must be live");
    assert!(
        small < 64,
        "one warmed indexed prediction allocated {small} times; expected a small constant"
    );
    assert!(
        large <= small + 8,
        "indexed-probe allocations grew with history length ({small} at 500 slots, {large} at \
         2000): the probe is allocating per candidate"
    );
}
