//! Property-based tests over the core data structures and invariants of the
//! reproduction: the ILP solver, the edit-distance metric, the application
//! state codec, the task work model, the battery, the server model and the
//! resource allocator.

use mobile_code_acceleration::core::{
    distance::{
        bitset_group_distance, bitset_group_distance_bounded, group_distance,
        group_distance_bounded, group_distance_naive, levenshtein, levenshtein_bounded,
        levenshtein_myers, levenshtein_myers_bounded, normalized_levenshtein, slot_distance,
        slot_distance_bounded, slot_distance_naive, GroupBitset,
    },
    ParallelismPolicy, SlotHistory, TimeSlot, WorkloadForecast, WorkloadPredictor,
};
use mobile_code_acceleration::lp::{
    BranchBoundOptions, LpBackend, LpError, Problem, Sense, SimplexOutcome, SimplexSolver,
    SparseOutcome, SparseProblem, VarKind,
};
use mobile_code_acceleration::offload::{ApplicationState, TaskKind, TaskSpec};
use mobile_code_acceleration::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// ILP solver
// ---------------------------------------------------------------------------

/// Brute-force reference for small covering problems:
/// minimize sum(cost_i * x_i) s.t. sum(cap_i * x_i) >= demand, sum(x_i) <= cap.
fn brute_force_cover(costs: &[f64], caps: &[f64], demand: f64, total_cap: usize) -> Option<f64> {
    let n = costs.len();
    let mut best: Option<f64> = None;
    let mut counts = vec![0usize; n];
    loop {
        let total: usize = counts.iter().sum();
        if total <= total_cap {
            let capacity: f64 = counts.iter().zip(caps).map(|(&x, &c)| x as f64 * c).sum();
            if capacity >= demand {
                let cost: f64 = counts.iter().zip(costs).map(|(&x, &c)| x as f64 * c).sum();
                best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            }
        }
        // increment mixed radix counter bounded by total_cap per variable
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            counts[i] += 1;
            if counts[i] > total_cap {
                counts[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The branch-and-bound ILP finds the same optimal cost as exhaustive
    /// enumeration on random covering problems (the shape of the paper's
    /// allocation model).
    #[test]
    fn ilp_matches_brute_force_on_covering_problems(
        costs in proptest::collection::vec(0.01f64..2.0, 2..4),
        caps in proptest::collection::vec(1.0f64..40.0, 2..4),
        demand in 1.0f64..120.0,
        total_cap in 3usize..6,
    ) {
        let n = costs.len().min(caps.len());
        let costs = &costs[..n];
        let caps = &caps[..n];
        let mut problem = Problem::minimize();
        let vars: Vec<_> = (0..n)
            .map(|i| problem.add_var(format!("x{i}"), VarKind::Integer, 0.0, Some(total_cap as f64), costs[i]))
            .collect();
        let cap_terms: Vec<_> = vars.iter().zip(caps).map(|(&v, &c)| (v, c)).collect();
        problem.add_constraint("cover", &cap_terms, Sense::Ge, demand);
        let count_terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        problem.add_constraint("cc", &count_terms, Sense::Le, total_cap as f64);

        let reference = brute_force_cover(costs, caps, demand, total_cap);
        match (problem.solve(), reference) {
            (Ok(solution), Some(best)) => {
                prop_assert!((solution.objective - best).abs() < 1e-6,
                    "solver {} vs brute force {best}", solution.objective);
                prop_assert!(problem.is_feasible(&solution.values, 1e-6));
            }
            (Err(LpError::Infeasible), None) => {}
            (solved, reference) => {
                return Err(TestCaseError::fail(format!(
                    "solver and brute force disagree: {solved:?} vs {reference:?}"
                )));
            }
        }
    }

    /// The revised warm-started backend and the dense cold backend agree on
    /// every random covering ILP: same optimal objective, same
    /// infeasible/unbounded classification, and the revised path actually
    /// warm-starts once branching happens.
    #[test]
    fn revised_backend_agrees_with_dense_backend(
        costs in proptest::collection::vec(0.01f64..2.0, 2..5),
        caps in proptest::collection::vec(1.0f64..40.0, 2..5),
        demand in 1.0f64..150.0,
        total_cap in 3usize..8,
    ) {
        let n = costs.len().min(caps.len());
        let mut problem = Problem::minimize();
        let vars: Vec<_> = (0..n)
            .map(|i| problem.add_var(format!("x{i}"), VarKind::Integer, 0.0, Some(total_cap as f64), costs[i]))
            .collect();
        let cap_terms: Vec<_> = vars.iter().zip(&caps).map(|(&v, &c)| (v, c)).collect();
        problem.add_constraint("cover", &cap_terms, Sense::Ge, demand);
        let count_terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        problem.add_constraint("cc", &count_terms, Sense::Le, total_cap as f64);

        let dense_options = BranchBoundOptions {
            backend: LpBackend::DenseTableau,
            ..Default::default()
        };
        match (problem.solve(), problem.solve_with(&dense_options)) {
            (Ok(revised), Ok(dense)) => {
                prop_assert!((revised.objective - dense.objective).abs() < 1e-6,
                    "revised {} vs dense {}", revised.objective, dense.objective);
                prop_assert!(problem.is_feasible(&revised.values, 1e-6));
                prop_assert_eq!(dense.stats.phase1_skips, 0);
                if revised.stats.nodes > 1 {
                    prop_assert!(revised.stats.phase1_skips > 0,
                        "branching without warm starts: {:?}", revised.stats);
                }
            }
            (Err(re), Err(de)) => prop_assert_eq!(re, de),
            (revised, dense) => {
                return Err(TestCaseError::fail(format!(
                    "backends disagree: revised {revised:?} vs dense {dense:?}"
                )));
            }
        }
    }

    /// The sparse revised simplex classifies and scores random LP
    /// relaxations exactly like the dense tableau reference.
    #[test]
    fn sparse_relaxation_agrees_with_dense_tableau(
        costs in proptest::collection::vec(-3.0f64..3.0, 1..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-5.0f64..5.0, 1..5), 0usize..3, -15.0f64..15.0),
            1..4,
        ),
        uppers in proptest::collection::vec(-12.0f64..12.0, 1..5),
    ) {
        let n = costs.len().min(uppers.len());
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..n)
            // draws below 0.5 mean "no upper bound" (the vendored proptest
            // stand-in has no option strategy)
            .map(|i| {
                let upper = (uppers[i] > 0.5).then_some(uppers[i]);
                p.add_var(format!("x{i}"), VarKind::Continuous, 0.0, upper, costs[i])
            })
            .collect();
        for (r, (coeffs, sense, rhs)) in rows.iter().enumerate() {
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c))
                .collect();
            let sense = match sense {
                0 => Sense::Le,
                1 => Sense::Ge,
                _ => Sense::Eq,
            };
            p.add_constraint(format!("c{r}"), &terms, sense, *rhs);
        }
        let dense = SimplexSolver::from_problem(&p, &[]).solve_dense();
        let sparse = SparseProblem::from_problem(&p).solve_cold(&[]);
        match (dense, sparse) {
            (Ok(SimplexOutcome::Optimal { objective: od, .. }), Ok(SparseOutcome::Optimal(sol))) => {
                prop_assert!((od - sol.objective).abs() < 1e-5,
                    "dense {od} vs sparse {}", sol.objective);
            }
            (Ok(SimplexOutcome::Infeasible), Ok(SparseOutcome::Infeasible)) => {}
            (Ok(SimplexOutcome::Unbounded), Ok(SparseOutcome::Unbounded)) => {}
            (Err(_), Err(_)) => {}
            (d, s) => {
                return Err(TestCaseError::fail(format!(
                    "solvers disagree: dense {d:?} vs sparse {s:?}"
                )));
            }
        }
    }

    /// LP relaxations never cost more than the integer optimum (weak duality
    /// of the relaxation).
    #[test]
    fn relaxation_bounds_integer_optimum(
        costs in proptest::collection::vec(0.05f64..3.0, 2..5),
        demand in 5.0f64..60.0,
    ) {
        let mut problem = Problem::minimize();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| problem.add_var(format!("x{i}"), VarKind::Integer, 0.0, Some(30.0), c))
            .collect();
        let terms: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, 3.0 + i as f64)).collect();
        problem.add_constraint("cover", &terms, Sense::Ge, demand);
        let relaxed = problem.solve_relaxation().expect("relaxation feasible");
        let integer = problem.solve().expect("ilp feasible");
        prop_assert!(relaxed.objective <= integer.objective + 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Distance metric
// ---------------------------------------------------------------------------

/// Sorted, deduplicated user run — the representation `TimeSlot` guarantees.
fn user_run(ids: Vec<u16>) -> Vec<UserId> {
    let set: BTreeSet<UserId> = ids.into_iter().map(|i| UserId(u32::from(i))).collect();
    set.into_iter().collect()
}

fn slot_of(index: usize, assignments: &[(u8, u16)]) -> TimeSlot {
    TimeSlot::from_assignments(
        index,
        assignments
            .iter()
            .map(|&(g, u)| (AccelerationGroupId(g), UserId(u32::from(u)))),
    )
}

const SLOT_GROUPS: [AccelerationGroupId; 3] = [
    AccelerationGroupId(0),
    AccelerationGroupId(1),
    AccelerationGroupId(2),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The per-group edit distance is a metric: identity, symmetry, triangle
    /// inequality.
    #[test]
    fn group_distance_is_a_metric(
        a in proptest::collection::vec(0u16..200, 0..20),
        b in proptest::collection::vec(0u16..200, 0..20),
        c in proptest::collection::vec(0u16..200, 0..20),
    ) {
        let (a, b, c) = (user_run(a), user_run(b), user_run(c));
        prop_assert_eq!(group_distance(&a, &a), 0);
        prop_assert_eq!(group_distance(&a, &b), group_distance(&b, &a));
        prop_assert!(group_distance(&a, &c) <= group_distance(&a, &b) + group_distance(&b, &c));
        // zero distance implies equality
        if group_distance(&a, &b) == 0 {
            prop_assert_eq!(a.clone(), b.clone());
        }
    }

    /// The allocation-free merge distance agrees exactly with the retained
    /// set-based reference, and its bounded variant prunes exactly beyond
    /// the true distance.
    #[test]
    fn merge_distance_matches_naive_reference(
        a in proptest::collection::vec(0u16..200, 0..30),
        b in proptest::collection::vec(0u16..200, 0..30),
        cap in 0usize..70,
    ) {
        let (a, b) = (user_run(a), user_run(b));
        let exact = group_distance_naive(&a, &b);
        prop_assert_eq!(group_distance(&a, &b), exact);
        let bounded = group_distance_bounded(&a, &b, cap);
        if cap >= exact {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    /// Levenshtein distance respects the length-difference lower bound and the
    /// max-length upper bound; normalization stays in [0, 1].
    #[test]
    fn levenshtein_bounds(
        a in proptest::collection::vec(0u8..5, 0..24),
        b in proptest::collection::vec(0u8..5, 0..24),
    ) {
        let d = levenshtein(&a, &b);
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
        let norm = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&norm));
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    /// The banded early-exit Levenshtein agrees exactly with the full-matrix
    /// reference whenever the cap admits the true distance, and prunes
    /// (returns `None`) exactly when it does not.
    #[test]
    fn banded_levenshtein_matches_classic_reference(
        a in proptest::collection::vec(0u8..5, 0..24),
        b in proptest::collection::vec(0u8..5, 0..24),
        cap in 0usize..26,
    ) {
        let exact = levenshtein(&a, &b);
        let bounded = levenshtein_bounded(&a, &b, cap);
        if cap >= exact {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    /// The slot distance is zero exactly for identical per-group assignments
    /// and symmetric otherwise; the merge implementation and its bounded
    /// variant agree with the set-based reference.
    #[test]
    fn slot_distance_properties(
        assignments_a in proptest::collection::vec((0u8..3, 0u16..60), 0..40),
        assignments_b in proptest::collection::vec((0u8..3, 0u16..60), 0..40),
    ) {
        let slot_a = slot_of(0, &assignments_a);
        let slot_b = slot_of(1, &assignments_b);
        prop_assert_eq!(slot_distance(&slot_a, &slot_a, &SLOT_GROUPS), 0);
        prop_assert_eq!(
            slot_distance(&slot_a, &slot_b, &SLOT_GROUPS),
            slot_distance(&slot_b, &slot_a, &SLOT_GROUPS)
        );
        let exact = slot_distance_naive(&slot_a, &slot_b, &SLOT_GROUPS);
        prop_assert_eq!(slot_distance(&slot_a, &slot_b, &SLOT_GROUPS), exact);
        prop_assert_eq!(slot_distance_bounded(&slot_a, &slot_b, &SLOT_GROUPS, exact), Some(exact));
        if exact > 0 {
            prop_assert_eq!(
                slot_distance_bounded(&slot_a, &slot_b, &SLOT_GROUPS, exact - 1),
                None
            );
        }
    }

    /// The best-first pruned nearest-neighbour prediction returns exactly
    /// the forecast of the retained naive full scan, on arbitrary histories
    /// and probes. The tight user universe (ids 0..40) makes duplicate
    /// slots and equal-distance ties common, stressing the earliest-slot
    /// tie-break of the best-first candidate ordering.
    #[test]
    fn pruned_prediction_matches_naive_scan(
        history in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u16..40), 0..12),
            1..14,
        ),
        probe in proptest::collection::vec((0u8..3, 0u16..40), 0..12),
    ) {
        let probe = slot_of(0, &probe);
        let mut predictor = WorkloadPredictor::new(SLOT_GROUPS.to_vec(), 3_600_000.0);
        for assignments in &history {
            predictor.observe_slot(slot_of(0, assignments));
        }
        let fast = predictor.predict(&probe);
        let naive = predictor.predict_naive(&probe);
        prop_assert_eq!(fast.unwrap(), naive.unwrap());
    }

    /// The chunked parallel knowledge-base scan is bit-identical to the
    /// sequential best-first scan and to the naive full scan, for every
    /// chunk count — including chunk counts above the history length. The
    /// tight universe again makes exact ties common, so the per-chunk
    /// first-minimum merge is exercised on equal distances that straddle
    /// chunk boundaries.
    #[test]
    fn parallel_prediction_matches_serial_and_naive(
        history in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u16..40), 0..12),
            1..14,
        ),
        probe in proptest::collection::vec((0u8..3, 0u16..40), 0..12),
        chunks in 2usize..9,
    ) {
        let probe = slot_of(0, &probe);
        let mut serial = WorkloadPredictor::new(SLOT_GROUPS.to_vec(), 3_600_000.0);
        for assignments in &history {
            serial.observe_slot(slot_of(0, assignments));
        }
        let parallel = serial
            .clone()
            .with_parallelism(ParallelismPolicy::parallel(chunks).with_min_parallel_slots(1));
        let chunked = parallel.predict(&probe);
        prop_assert_eq!(&chunked, &serial.predict(&probe));
        prop_assert_eq!(chunked.unwrap(), serial.predict_naive(&probe).unwrap());
    }

    /// `observe_and_predict` (the closed loop's per-interval fast path) is
    /// bit-identical to `observe_slot` followed by `predict` — and hence,
    /// transitively, to the naive scan — on arbitrary slot sequences.
    #[test]
    fn observe_and_predict_matches_separate_observe_then_predict(
        slots in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u16..30), 0..10),
            1..16,
        ),
    ) {
        let mut combined = WorkloadPredictor::new(SLOT_GROUPS.to_vec(), 3_600_000.0);
        let mut separate = combined.clone();
        for assignments in &slots {
            let slot = slot_of(0, assignments);
            let fast = combined.observe_and_predict(slot.clone());
            separate.observe_slot(slot.clone());
            let reference = separate.predict(&slot);
            prop_assert_eq!(fast.unwrap(), reference.unwrap());
        }
        prop_assert_eq!(combined, separate);
    }

    /// A windowed history never retains more than its cap, keeps global
    /// indices, and predicts from retained slots only.
    #[test]
    fn windowed_history_bounds_retention(
        loads in proptest::collection::vec(1u16..50, 1..30),
        window in 1usize..8,
    ) {
        let mut history = SlotHistory::hourly().with_window(window);
        for (i, &load) in loads.iter().enumerate() {
            let assignments: Vec<(u8, u16)> = (0..load).map(|u| (0u8, u)).collect();
            history.push(slot_of(i, &assignments));
        }
        prop_assert!(history.len() <= window);
        prop_assert_eq!(history.first_index(), loads.len().saturating_sub(window));
        let indices: Vec<usize> = history.slots().iter().map(|s| s.index).collect();
        let expected: Vec<usize> =
            (loads.len().saturating_sub(window)..loads.len()).collect();
        prop_assert_eq!(indices, expected);
    }
}

fn raw_run(ids: Vec<u16>) -> Vec<UserId> {
    ids.into_iter().map(|i| UserId(u32::from(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Myers' bit-vector Levenshtein agrees exactly with the classic
    /// full-matrix reference and with the banded early-exit variant's
    /// `Some`/`None` semantics. The tiny symbol universe makes the runs
    /// duplicate-heavy, and lengths beyond 64 force the carry chain across
    /// machine-word boundaries.
    #[test]
    fn myers_levenshtein_matches_scalar_reference(
        a in proptest::collection::vec(0u16..6, 0..150),
        b in proptest::collection::vec(0u16..6, 0..150),
        cap in 0usize..160,
    ) {
        let (a, b) = (raw_run(a), raw_run(b));
        let exact = levenshtein(&a, &b);
        prop_assert_eq!(levenshtein_myers(&a, &b), exact);
        let bounded = levenshtein_myers_bounded(&a, &b, cap);
        if cap >= exact {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
        prop_assert_eq!(
            levenshtein_myers_bounded(&a, &b, cap),
            levenshtein_bounded(&a, &b, cap)
        );
    }

    /// The word-aligned bitset distance agrees exactly with the merge
    /// implementation and the set-based reference, including the bounded
    /// variant's prune semantics. Ids span several 64-bit words so the
    /// prefix/overlap/suffix decomposition is exercised on every shape.
    #[test]
    fn bitset_distance_matches_merge_and_naive(
        a in proptest::collection::vec(0u16..300, 0..40),
        b in proptest::collection::vec(0u16..300, 0..40),
        cap in 0usize..90,
    ) {
        let (a, b) = (user_run(a), user_run(b));
        let exact = group_distance_naive(&a, &b);
        let set_a = GroupBitset::from_run(&a).expect("dense-enough run packs");
        let set_b = GroupBitset::from_run(&b).expect("dense-enough run packs");
        prop_assert_eq!(set_a.count(), a.len());
        prop_assert_eq!(bitset_group_distance(&set_a, &set_b), exact);
        prop_assert_eq!(bitset_group_distance(&set_a, &set_b), group_distance(&a, &b));
        let bounded = bitset_group_distance_bounded(&set_a, &set_b, cap);
        if cap >= exact {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    /// The vantage-point indexed nearest-slot scan is bit-identical to the
    /// pruned serial scan and the naive full scan for every pivot count,
    /// with and without a retention window. The tight user universe (ids
    /// 0..40) makes duplicate slots and exact-distance ties common, so ties
    /// straddle pivot ring partitions and the earliest-slot tie-break is
    /// exercised across them; the window exercises incremental eviction
    /// maintenance of the index.
    #[test]
    fn indexed_prediction_matches_pruned_and_naive(
        history in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0u16..40), 0..12),
            1..14,
        ),
        probe in proptest::collection::vec((0u8..3, 0u16..40), 0..12),
        pivots in 1usize..5,
        window_raw in 0usize..10,
    ) {
        // draws below 2 mean "unbounded history" (the vendored proptest has
        // no option combinator); 2..10 bound the retention window
        let window = (window_raw >= 2).then_some(window_raw);
        let probe = slot_of(0, &probe);
        let mut serial = WorkloadPredictor::new(SLOT_GROUPS.to_vec(), 3_600_000.0);
        serial.set_window(window);
        let mut indexed = serial.clone().with_index_policy(
            IndexPolicy::indexed().with_pivots(pivots).with_min_indexed_slots(1),
        );
        for assignments in &history {
            let slot = slot_of(0, assignments);
            serial.observe_slot(slot.clone());
            indexed.observe_slot(slot);
        }
        prop_assert!(indexed.index_active());
        let fast = indexed.predict(&probe);
        prop_assert_eq!(&fast, &serial.predict(&probe));
        prop_assert_eq!(fast.unwrap(), serial.predict_naive(&probe).unwrap());
    }
}

// ---------------------------------------------------------------------------
// Offloading runtime
// ---------------------------------------------------------------------------

fn task_kind_strategy() -> impl Strategy<Value = TaskKind> {
    proptest::sample::select(TaskKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Application state survives an encode/decode round trip for every task
    /// kind and input size.
    #[test]
    fn application_state_round_trips(kind in task_kind_strategy(), size in 1u32..2_000, apk in 0u32..1_000) {
        let task = TaskSpec::new(kind, size);
        let state = ApplicationState::capture(task, apk);
        let decoded = ApplicationState::decode(state.encode()).expect("round trip");
        prop_assert_eq!(decoded, state);
    }

    /// The work model is monotone in the input size and always positive.
    #[test]
    fn work_model_is_monotone(kind in task_kind_strategy(), size in 2u32..1_000) {
        let smaller = TaskSpec::new(kind, size - 1).work_units();
        let larger = TaskSpec::new(kind, size).work_units();
        prop_assert!(smaller > 0.0);
        prop_assert!(larger >= smaller);
    }

    /// Battery energy is conserved: consumed energy never exceeds the charge
    /// that was available, and the level never goes negative.
    #[test]
    fn battery_conservation(
        capacity in 100.0f64..20_000.0,
        drains in proptest::collection::vec((0.0f64..5_000.0, 0.0f64..600_000.0), 0..30),
    ) {
        let mut battery = mobile_code_acceleration::mobile::Battery::new(capacity);
        let mut consumed = 0.0;
        for (power, duration) in drains {
            consumed += battery.drain(power, duration);
        }
        prop_assert!(consumed <= capacity + 1e-9);
        prop_assert!((battery.remaining_mwh() + consumed - capacity).abs() < 1e-6);
        prop_assert!(battery.level_percent() >= 0.0 && battery.level_percent() <= 100.0);
    }
}

// ---------------------------------------------------------------------------
// Cloud substrate and allocator
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Server response times grow monotonically with concurrency and shrink
    /// with per-core speed, for every instance type.
    #[test]
    fn server_contention_is_monotone(
        users_low in 1usize..40,
        extra in 1usize..60,
        work in 5.0f64..500.0,
    ) {
        for ty in InstanceType::ALL {
            let server = Server::new(ty);
            let low = server.expected_execution_ms(work, users_low);
            let high = server.expected_execution_ms(work, users_low + extra);
            prop_assert!(high >= low, "{ty}: {high} < {low}");
        }
    }

    /// Whatever the forecast, the ILP allocation covers it, respects the
    /// account cap and never costs more than the over-provisioning baseline.
    #[test]
    fn allocation_covers_forecast_within_cap(
        w1 in 0usize..400,
        w2 in 0usize..400,
        w3 in 0usize..400,
    ) {
        let groups = AccelerationGroups::paper_three_groups();
        let forecast = WorkloadForecast {
            per_group: vec![
                (AccelerationGroupId(1), w1),
                (AccelerationGroupId(2), w2),
                (AccelerationGroupId(3), w3),
            ],
            matched_slot: None,
        };
        let ilp = ResourceAllocator::with_policy(groups.clone(), AllocationPolicy::IlpExact)
            .allocate(&forecast);
        let over = ResourceAllocator::with_policy(groups, AllocationPolicy::OverProvision)
            .allocate(&forecast);
        if let Ok(allocation) = &ilp {
            prop_assert!(allocation.covers(&forecast));
            prop_assert!(allocation.total_instances() <= 20);
            if let Ok(over) = &over {
                prop_assert!(allocation.hourly_cost <= over.hourly_cost + 1e-9);
            }
        }
    }
}
